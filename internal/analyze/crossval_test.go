package analyze_test

// Cross-validation of the static analyzer against the dynamic
// simulator — the empirical half of the soundness argument:
//
//  1. every WAR violation a running Clank records lands on a word the
//     analyzer marked hazardous, both under clean intermittent power
//     and under the fault injector's full attack mix;
//  2. sizing Clank's tracking buffers from the analyzer's static
//     footprint bound provably eliminates buffer-overflow checkpoints
//     and keeps replay exact;
//  3. the Eq. 15 circular-buffer plan checked statically is replay-safe
//     when simulated.

import (
	"context"
	"reflect"
	"testing"

	"ehmodel/internal/analyze"
	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/faults"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// fixedCfg mirrors the strategy integration tests: a bench-supply
// device with the given per-period energy in ALU cycles. Periods must
// exceed Clank's 8000-cycle watchdog or workloads forming one unbounded
// idempotent region can livelock.
func fixedCfg(prog *asm.Program, cyclesOfEnergy float64) device.Config {
	pm := energy.MSP430Power()
	e := cyclesOfEnergy * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	return device.Config{
		Prog:       prog,
		Power:      pm,
		CapC:       capC,
		CapVMax:    vmax,
		VOn:        von,
		VOff:       voff,
		MaxPeriods: 20000,
		MaxCycles:  2_000_000_000,
	}
}

// buildFRAM builds a workload with data in FRAM (Clank's required
// placement) and analyzes it.
func buildFRAM(t *testing.T, w workload.Workload) (*asm.Program, []uint32, *analyze.Report) {
	t.Helper()
	opts := workload.Options{Seg: asm.FRAM}
	prog, err := w.Build(opts)
	if err != nil {
		t.Fatalf("building %s: %v", w.Name, err)
	}
	rep, err := analyze.Analyze(prog, analyze.Options{})
	if err != nil {
		t.Fatalf("analyzing %s: %v", w.Name, err)
	}
	return prog, w.Ref(opts), rep
}

// clankWith returns a default Clank with both tracking buffers resized.
func clankWith(read, write int) *strategy.Clank {
	c := strategy.NewClank()
	c.ReadFirstEntries = read
	c.WriteFirstEntries = write
	c.Reset()
	return c
}

// checkCovered asserts every dynamically violated word is statically
// hazardous, returning the violation count.
func checkCovered(t *testing.T, rep *analyze.Report, c *strategy.Clank) int {
	t.Helper()
	words := c.ViolationWords()
	for _, w := range words {
		if !rep.HazardWord(w) {
			t.Errorf("dynamic WAR violation at %#x not in static hazard set", w)
		}
	}
	return len(words)
}

// TestStaticHazardsCoverClankContinuous runs every workload under Clank
// on intermittent bench power across several tracking-buffer sizes and
// asserts the analyzer's global hazard set covers every violation the
// hardware model records. Small buffers force frequent clears and so
// probe many distinct dynamic checkpoint placements.
func TestStaticHazardsCoverClankContinuous(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation matrix is slow")
	}
	violations := 0
	for _, w := range workload.All() {
		for _, entries := range []int{2, 4, 8} {
			prog, want, rep := buildFRAM(t, w)
			c := clankWith(entries, entries)
			d, err := device.New(fixedCfg(prog, 20000), c)
			if err != nil {
				t.Fatalf("%s/%d: %v", w.Name, entries, err)
			}
			res, err := d.Run()
			if err != nil {
				t.Fatalf("%s/%d: %v", w.Name, entries, err)
			}
			if !res.Completed {
				t.Fatalf("%s/%d: did not complete", w.Name, entries)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("%s/%d: output diverged\n got %v\nwant %v", w.Name, entries, res.Output, want)
			}
			violations += checkCovered(t, rep, c)
		}
	}
	// The theorem must not hold vacuously: the sweep has to provoke
	// real WAR violations somewhere.
	if violations == 0 {
		t.Fatal("no dynamic WAR violations observed across the whole sweep; coverage check is vacuous")
	}
}

// TestStaticHazardsCoverClankFaulted repeats the coverage check with
// the fault injector's full attack mix (supply cuts, torn writes, bit
// flips, forced stale restores) driving the run through the auditor.
// Power failures at arbitrary points exercise checkpoint placements the
// clean run never sees.
func TestStaticHazardsCoverClankFaulted(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted cross-validation matrix is slow")
	}
	ctx := context.Background()
	violations := 0
	for _, w := range workload.All() {
		prog, want, rep := buildFRAM(t, w)
		for seed := int64(1); seed <= 3; seed++ {
			c := clankWith(4, 4)
			cs := faults.Case{Strategy: "clank", Workload: w.Name, Seed: seed}
			out, err := faults.AuditRun(ctx, faults.Options{}, c, prog, want, cs)
			if err != nil {
				t.Fatalf("%s: %v", cs, err)
			}
			if len(out.Violations) > 0 {
				t.Fatalf("crash-consistency violation: %v", out.Violations[0])
			}
			// An honest fail-stop (out.Unrecoverable) still leaves valid
			// violation bookkeeping.
			violations += checkCovered(t, rep, c)
		}
	}
	if violations == 0 {
		t.Fatal("no dynamic WAR violations observed under fault injection; coverage check is vacuous")
	}
}

// TestFootprintBoundEliminatesBufferFulls validates the analyzer's
// ClankBound claim: tracking buffers at least as large as the static
// access footprint can never overflow, because between any two clears
// the buffers hold a subset of the words the program can touch.
func TestFootprintBoundEliminatesBufferFulls(t *testing.T) {
	bounded := 0
	for _, w := range workload.All() {
		prog, want, rep := buildFRAM(t, w)
		if rep.Clank.ReadFirstEntries < 0 || rep.Clank.WriteFirstEntries < 0 {
			t.Logf("%s: footprint unbounded, bound not applicable", w.Name)
			continue
		}
		bounded++
		c := clankWith(rep.Clank.ReadFirstEntries, rep.Clank.WriteFirstEntries)
		d, err := device.New(fixedCfg(prog, 20000), c)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete", w.Name)
		}
		if !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("%s: output diverged\n got %v\nwant %v", w.Name, res.Output, want)
		}
		if fulls := c.Stats().BufferFulls; fulls != 0 {
			t.Errorf("%s: %d buffer-full checkpoints despite footprint-sized buffers (read %d, write %d)",
				w.Name, fulls, rep.Clank.ReadFirstEntries, rep.Clank.WriteFirstEntries)
		}
		checkCovered(t, rep, c)
	}
	if bounded == 0 {
		t.Fatal("no workload had a bounded footprint; the ClankBound claim was never exercised")
	}
}

// TestTaskFootprintsCoverAlpacaCommits cross-validates the task
// decomposition pass against the checkpoint-free runtime built on it:
// every task commit an Alpaca run records — on clean intermittent
// power and with the fault injector forcing task re-executions — must
// flush a write set contained in the static footprint of the task
// entry it committed from. The static per-task write sets are the
// sound over-approximation the Eq. 15 buffer bound is sized against,
// so a dynamic word outside them would unsound the sizing.
func TestTaskFootprintsCoverAlpacaCommits(t *testing.T) {
	ctx := context.Background()
	checked, reexecs := 0, 0
	for _, name := range []string{"counter", "ds", "crc", "qsort"} {
		w, ok := workload.Get(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		opts := workload.Options{Seg: asm.SRAM}
		prog, err := w.Build(opts)
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		want := w.Ref(opts)

		verify := func(label string, a *strategy.Alpaca) {
			tt := a.Table()
			if tt == nil {
				t.Fatalf("%s/%s: decomposition pass fell back, no task table", name, label)
			}
			for _, co := range a.Commits() {
				// A coalesced commit flushes the writes of every task in
				// its span, so the containing set is the union of their
				// static footprints.
				static := make(map[uint32]struct{})
				top := false
				for _, entry := range append([]uint32{co.Entry}, co.Span...) {
					words, unbounded, ok := tt.FootprintAt(entry)
					if !ok {
						t.Errorf("%s/%s: commit span entry %d not a static task boundary", name, label, entry)
						continue
					}
					if unbounded {
						top = true
						continue
					}
					for _, wd := range words {
						static[wd] = struct{}{}
					}
				}
				checked++
				if top {
					continue // an unbounded static footprint contains everything
				}
				for _, wd := range co.Words {
					if _, in := static[wd]; !in {
						t.Errorf("%s/%s: task span from entry %d committed word %#x outside its static footprint union",
							name, label, co.Entry, wd)
					}
				}
			}
		}

		// Clean intermittent power.
		a := strategy.NewAlpaca()
		a.RecordCommits()
		d, err := device.New(fixedCfg(prog, 20000), a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed || !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("%s: alpaca run diverged: completed=%v got %v want %v",
				name, res.Completed, res.Output, want)
		}
		verify("clean", a)

		// Fault injection: power cuts force reboots, so recorded commits
		// include re-executed tasks restarting from committed boundaries.
		for seed := int64(1); seed <= 2; seed++ {
			fa := strategy.NewAlpaca()
			fa.RecordCommits()
			cs := faults.Case{Strategy: "alpaca", Workload: name, Seed: seed}
			out, err := faults.AuditRun(ctx, faults.Options{}, fa, prog, want, cs)
			if err != nil {
				t.Fatalf("%s: %v", cs, err)
			}
			if len(out.Violations) > 0 {
				t.Fatalf("%s: crash-consistency violation: %v", cs, out.Violations[0])
			}
			verify("faulted", fa)
			reexecs += out.Faults.PowerCuts
		}
	}
	if checked == 0 {
		t.Fatal("no task commits recorded; containment check is vacuous")
	}
	if reexecs == 0 {
		t.Fatal("fault injection delivered no power cuts; re-execution containment never exercised")
	}
}

// TestEq15PlanReplaySafe closes the loop on the paper's Eq. 15: derive
// τ_store statically, size the circular buffer with the analytic plan,
// check the plan statically, then simulate the planned kernel under
// Clank with footprint-sized tracking buffers — both on clean
// intermittent power and under the full fault mix — and require exact
// replay throughout.
func TestEq15PlanReplaySafe(t *testing.T) {
	const (
		n, iters   = 4, 3
		writeback  = 0
		tauBTarget = 170.0
	)
	// Static τ_store from a probe build sized like the kernel itself.
	probe, err := workload.CircularBuffer(n, n, iters, asm.FRAM)
	if err != nil {
		t.Fatal(err)
	}
	probeRep, err := analyze.Analyze(probe, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res15, err := probeRep.Eq15(n, n, writeback, tauBTarget)
	if err != nil {
		t.Fatal(err)
	}
	if res15.TauStore != workload.CircularBufferStoreCycles() {
		t.Fatalf("static tau_store %g, want %g", res15.TauStore, workload.CircularBufferStoreCycles())
	}
	if res15.Satisfied {
		t.Fatalf("N=%d should not reach the %g-cycle target", n, tauBTarget)
	}
	if res15.NOpt <= n {
		t.Fatalf("planned buffer N=%d not larger than array n=%d", res15.NOpt, n)
	}

	// Rebuild at the planned size and re-check statically.
	prog, err := workload.CircularBuffer(n, res15.NOpt, iters, asm.FRAM)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.CircularBufferRef(n, res15.NOpt, iters)
	rep, err := analyze.Analyze(prog, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	planned, err := rep.Eq15(n, res15.NOpt, writeback, tauBTarget)
	if err != nil {
		t.Fatal(err)
	}
	if !planned.Satisfied {
		t.Fatalf("planned size N=%d does not satisfy Eq. 15: tau_B %g < %g",
			res15.NOpt, planned.TauB, tauBTarget)
	}
	if rep.Clank.ReadFirstEntries < 0 || rep.Clank.WriteFirstEntries < 0 {
		t.Fatal("planned kernel footprint unbounded")
	}

	// Clean intermittent power.
	c := clankWith(rep.Clank.ReadFirstEntries, rep.Clank.WriteFirstEntries)
	d, err := device.New(fixedCfg(prog, 20000), c)
	if err != nil {
		t.Fatal(err)
	}
	run, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed || !reflect.DeepEqual(run.Output, want) {
		t.Fatalf("planned kernel replay diverged: completed=%v got %v want %v",
			run.Completed, run.Output, want)
	}
	if fulls := c.Stats().BufferFulls; fulls != 0 {
		t.Errorf("planned kernel still overflowed tracking buffers %d time(s)", fulls)
	}
	checkCovered(t, rep, c)

	// Full fault mix.
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		fc := clankWith(rep.Clank.ReadFirstEntries, rep.Clank.WriteFirstEntries)
		cs := faults.Case{Strategy: "clank", Workload: "circular-eq15", Seed: seed}
		out, err := faults.AuditRun(ctx, faults.Options{}, fc, prog, want, cs)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Violations) > 0 {
			t.Fatalf("planned kernel not replay-safe under faults: %v", out.Violations[0])
		}
		if fulls := fc.Stats().BufferFulls; fulls != 0 {
			t.Errorf("seed %d: %d buffer-full checkpoints under faults", seed, fulls)
		}
		checkCovered(t, rep, fc)
	}
}
