package analyze

import (
	"math"
	"strings"
	"testing"

	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
)

func sysIn(s isa.Sys) isa.Instr { return isa.Instr{Op: isa.SYS, Imm: int32(s)} }

// wcecOpts builds options with the budget expressed in ALU-cycle units
// of the MSP430 power model, the same convention ehlint -emax uses.
func wcecOpts(budgetCycles float64) WCECOptions {
	pm := energy.MSP430Power()
	return WCECOptions{Power: pm, BudgetJ: budgetCycles * pm.EnergyPerCycle(energy.ClassALU)}
}

// countedLoop is the classic ten-iteration counted store loop:
//
//	0: ADDI r2,r0,10
//	1: SW   r2,0(r0)    <- loop header
//	2: ADDI r2,r2,-1
//	3: BNE  r2,r0,-2
//	4: halt
func countedLoop(t *testing.T) []isa.Instr {
	t.Helper()
	return []isa.Instr{
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 10},
		{Op: isa.SW, Rd: isa.R2, Rs1: isa.R0, Imm: 0},
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1},
		{Op: isa.BNE, Rd: isa.R2, Rs1: isa.R0, Imm: -2},
		halt(),
	}
}

func TestWCECCountedLoop(t *testing.T) {
	p := rawProg(t, "counted", countedLoop(t)...)
	tbl, err := WCEC(p, wcecOpts(1000))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	if tbl.Mode != WCECCheckpoint || len(tbl.Regions) != 1 {
		t.Fatalf("want 1 checkpoint region, got mode=%s regions=%d", tbl.Mode, len(tbl.Regions))
	}
	r := tbl.Regions[0]
	if r.Entry != 0 || r.Kind != TaskEntry {
		t.Fatalf("region = %+v, want entry 0 kind %q", r, TaskEntry)
	}
	// Ten induction-variable updates bound the completed iterations at
	// 10 (one of slack over the 9 complete back-edge cycles — the bound
	// counts update executions): entry ADDI (1) + 10·(SW 2 + ADDI 1 +
	// BNE taken 2) + exit suffix (SW 2 + ADDI 1 + BNE fall 1) + halt 1.
	const wantWC = 1 + 10*5 + 4 + 1
	if r.WCUnbounded || r.WCCycles != wantWC {
		t.Fatalf("WC = %d (unbounded=%v), want %d", r.WCCycles, r.WCUnbounded, wantWC)
	}
	// Cheapest commit: ADDI + one SW + ADDI + BNE fall + halt.
	const wantBC = 1 + 2 + 1 + 1 + 1
	if r.BCUnbounded || r.BCCycles != wantBC {
		t.Fatalf("BC = %d (unbounded=%v), want %d", r.BCCycles, r.BCUnbounded, wantBC)
	}
	pm := energy.MSP430Power()
	alu, mem := pm.EnergyPerCycle(energy.ClassALU), pm.EnergyPerCycle(energy.ClassMem)
	// 11 SW executions are mem-class (22 cycles); the rest ALU.
	wantWCE := 22*mem + float64(wantWC-22)*alu
	if math.Abs(r.WCEnergy-wantWCE) > 1e-15 {
		t.Fatalf("WCE = %g, want %g", r.WCEnergy, wantWCE)
	}
	if r.Verdict != WCECCertified {
		t.Fatalf("verdict %s, want certified at a 1000-cycle budget", r.Verdict)
	}
	if len(tbl.Repair) != 0 || !tbl.RepairComplete {
		t.Fatalf("feasible table should have empty complete repair, got %v complete=%v",
			tbl.Repair, tbl.RepairComplete)
	}
}

func TestWCECVerdictThresholds(t *testing.T) {
	p := rawProg(t, "counted", countedLoop(t)...)
	// Budget between BCE and WCE: the worst path overruns, some fit.
	tbl, err := WCEC(p, wcecOpts(30))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	if v := tbl.Regions[0].Verdict; v != WCECUnknown {
		t.Fatalf("verdict %s at 30 cycles, want unknown", v)
	}
	// A cut at the loop header makes every region a single iteration.
	if !tbl.RepairComplete || len(tbl.Repair) != 1 || tbl.Repair[0] != 1 {
		t.Fatalf("repair = %v complete=%v, want [1] complete", tbl.Repair, tbl.RepairComplete)
	}

	// Budget below even the cheapest commit: livelock.
	tbl, err = WCEC(p, wcecOpts(3))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	if v := tbl.Regions[0].Verdict; v != WCECLivelock {
		t.Fatalf("verdict %s at 3 cycles, want livelock", v)
	}
	if fl := tbl.FirstLivelock(); fl == nil || fl.Entry != 0 {
		t.Fatalf("FirstLivelock = %+v, want entry 0", fl)
	}
	c, l, u := tbl.VerdictCounts()
	if c != 0 || l != 1 || u != 0 {
		t.Fatalf("VerdictCounts = %d/%d/%d, want 0/1/0", c, l, u)
	}
}

func TestWCECUnboundedNoCommit(t *testing.T) {
	// An unconditional self-jump with no reachable commit: both bounds
	// must report unbounded (∞), never a wrapped figure, and the verdict
	// is livelock at any budget. (A conditional spin would not do: the
	// path-insensitive best case may follow the infeasible fall-through
	// to a commit, which weakens the verdict to unknown — sound, just
	// not this test.)
	p := rawProg(t, "spin",
		isa.Instr{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 1},
		isa.Instr{Op: isa.JAL, Rd: isa.R0, Imm: 1}, // pc1 -> pc1 (absolute target)
		halt(),
	)
	tbl, err := WCEC(p, wcecOpts(1e12))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	r := tbl.Regions[0]
	if !r.WCUnbounded || !r.BCUnbounded {
		t.Fatalf("want both bounds unbounded, got WC=%v BC=%v", r.WCUnbounded, r.BCUnbounded)
	}
	if !math.IsInf(r.WCEnergy, 1) || !math.IsInf(r.BCEnergy, 1) {
		t.Fatalf("want +Inf energies, got %g / %g", r.WCEnergy, r.BCEnergy)
	}
	if r.Verdict != WCECLivelock {
		t.Fatalf("verdict %s, want livelock", r.Verdict)
	}
	// Repair cuts at the loop header, committing each iteration.
	if !tbl.RepairComplete || len(tbl.Repair) != 1 || tbl.Repair[0] != 1 {
		t.Fatalf("repair = %v complete=%v, want [1] complete", tbl.Repair, tbl.RepairComplete)
	}
}

func TestWCECDataDependentTrips(t *testing.T) {
	// The trip count depends on a sensor read the intervals cannot
	// bound: the worst case is unbounded but a commit is reachable, so
	// with an adequate budget the verdict is unknown, not livelock.
	p := rawProg(t, "sense-loop",
		isa.Instr{Op: isa.SYS, Rd: isa.R2, Imm: int32(isa.SysSense)},
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1},
		isa.Instr{Op: isa.BNE, Rd: isa.R2, Rs1: isa.R0, Imm: -1},
		halt(),
	)
	tbl, err := WCEC(p, wcecOpts(1000))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	r := tbl.Regions[0]
	if !r.WCUnbounded {
		t.Fatalf("data-dependent loop must be unbounded, got WC=%d", r.WCCycles)
	}
	if r.BCUnbounded || r.BCCycles != 1+1+1+1 {
		t.Fatalf("BC = %d (unbounded=%v), want 4", r.BCCycles, r.BCUnbounded)
	}
	if r.Verdict != WCECUnknown {
		t.Fatalf("verdict %s, want unknown", r.Verdict)
	}
}

func TestWCECCheckpointSiteSplitsRegions(t *testing.T) {
	// A checkpoint site inside the loop body: executing it ends the
	// region, so no region contains the cycle and all bounds are finite
	// even though the loop's trip count is irrelevant.
	p := rawProg(t, "chkpt-loop",
		isa.Instr{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R0, Imm: 5},
		sysIn(isa.SysChkpt), // pc1
		isa.Instr{Op: isa.ADDI, Rd: isa.R1, Rs1: isa.R1, Imm: -1},
		isa.Instr{Op: isa.BNE, Rd: isa.R1, Rs1: isa.R0, Imm: -2}, // -> pc1
		halt(),
	)
	tbl, err := WCEC(p, wcecOpts(1000))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	if len(tbl.Regions) != 2 {
		t.Fatalf("want 2 regions, got %d", len(tbl.Regions))
	}
	r0 := tbl.RegionAt(0)
	if r0 == nil || r0.WCUnbounded || r0.WCCycles != 1+1 {
		t.Fatalf("region 0 = %+v, want WC 2", r0)
	}
	r2 := tbl.RegionAt(2)
	if r2 == nil || r2.Kind != WCECChkpt {
		t.Fatalf("region at 2 = %+v, want kind %q", r2, WCECChkpt)
	}
	// Worst path: ADDI + BNE taken + the site SYS itself (4) beats
	// ADDI + BNE fall + halt (3).
	if r2.WCUnbounded || r2.WCCycles != 1+2+1 {
		t.Fatalf("region 2 WC = %d (unbounded=%v), want 4", r2.WCCycles, r2.WCUnbounded)
	}
	for _, r := range tbl.Regions {
		if r.Verdict != WCECCertified {
			t.Fatalf("region %d verdict %s, want certified", r.ID, r.Verdict)
		}
	}
}

func TestWCECNestedLoopsBranchRefined(t *testing.T) {
	// Nested counted loops whose trip counts only the branch-refined
	// intervals can bound: inner 3 iterations, outer 4.
	p := rawProg(t, "nested",
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 4},  // 0
		isa.Instr{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R0, Imm: 3},  // 1 outer header
		isa.Instr{Op: isa.ADDI, Rd: isa.R3, Rs1: isa.R3, Imm: -1}, // 2 inner header
		isa.Instr{Op: isa.BNE, Rd: isa.R3, Rs1: isa.R0, Imm: -1},  // 3 -> 2
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1}, // 4
		isa.Instr{Op: isa.BNE, Rd: isa.R2, Rs1: isa.R0, Imm: -4},  // 5 -> 1
		halt(), // 6
	)
	tbl, err := WCEC(p, wcecOpts(1e6))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	r := tbl.Regions[0]
	// Inner cycle: ADDI+BNE taken = 3 cycles × 3 trips + exit suffix
	// (ADDI 1 + BNE fall 1) = 11 cycles per inner-loop execution.
	// Outer cycle: ADDI(1) + inner(11) + ADDI(1) + BNE taken(2) = 15
	// × 4 trips + exit suffix (13 + BNE fall 1) = 74; entry ADDI and
	// halt add one each.
	const wantWC = 1 + 4*15 + 14 + 1
	if r.WCUnbounded || r.WCCycles != wantWC {
		t.Fatalf("WC = %d (unbounded=%v), want %d", r.WCCycles, r.WCUnbounded, wantWC)
	}
	if r.Verdict != WCECCertified {
		t.Fatalf("verdict %s, want certified", r.Verdict)
	}
}

func TestWCECTaskMode(t *testing.T) {
	// A WAR hazard (load then store to the same FRAM word) forces a
	// task-boundary cut before the store; the cut commits *before* the
	// PC executes, so the store belongs to the next region.
	p := rawProg(t, "war-cut",
		luiFRAM(isa.R1),
		isa.Instr{Op: isa.LW, Rd: isa.R2, Rs1: isa.R1, Imm: 0},
		isa.Instr{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: 1},
		isa.Instr{Op: isa.SW, Rd: isa.R2, Rs1: isa.R1, Imm: 0},
		halt(),
	)
	tt, err := Tasks(p, Options{})
	if err != nil {
		t.Fatalf("Tasks: %v", err)
	}
	if len(tt.Boundaries) == 0 {
		t.Fatalf("expected a WAR-cut boundary, got none (tasks=%d)", len(tt.Tasks))
	}
	tbl, err := WCEC(p, WCECOptions{Mode: WCECTask, Power: energy.MSP430Power(),
		BudgetJ: wcecOpts(1000).BudgetJ})
	if err != nil {
		t.Fatalf("WCEC task mode: %v", err)
	}
	if tbl.Mode != WCECTask {
		t.Fatalf("mode = %s", tbl.Mode)
	}
	cut := tt.Boundaries[0]
	rc := tbl.RegionAt(cut)
	if rc == nil || rc.Kind != TaskWARCut {
		t.Fatalf("no %q region at cut %d: %+v", TaskWARCut, cut, tbl.Regions)
	}
	r0 := tbl.RegionAt(0)
	if r0 == nil {
		t.Fatalf("no region at entry 0")
	}
	// Region 0 ends on the edge *into* the cut: the cut instruction's
	// own cost belongs to the cut region.
	wantR0 := uint64(0)
	for pc := 0; pc < cut; pc++ {
		wantR0 += uint64(1)
		if p.Code[pc].Op.IsLoad() || p.Code[pc].Op.IsStore() {
			wantR0++ // mem ops cost 2
		}
	}
	if r0.WCUnbounded || r0.WCCycles != wantR0 {
		t.Fatalf("region 0 WC = %d, want %d (cut-before at %d)", r0.WCCycles, wantR0, cut)
	}
}

func TestWCECStringRoundTrip(t *testing.T) {
	for _, mode := range []WCECMode{WCECCheckpoint, WCECTask} {
		p := rawProg(t, "counted", countedLoop(t)...)
		tbl, err := WCEC(p, WCECOptions{Mode: mode, Power: energy.MSP430Power(),
			BudgetJ: wcecOpts(30).BudgetJ})
		if err != nil {
			t.Fatalf("WCEC %s: %v", mode, err)
		}
		got, err := ParseWCEC(tbl.String())
		if err != nil {
			t.Fatalf("ParseWCEC(%s): %v\n%s", mode, err, tbl.String())
		}
		if got.String() != tbl.String() {
			t.Fatalf("round trip drift (%s):\n%s\nvs\n%s", mode, tbl.String(), got.String())
		}
	}
	// Unbounded bounds survive the round trip as "unbounded"/"inf".
	p := rawProg(t, "spin",
		isa.Instr{Op: isa.BEQ, Rd: isa.R0, Rs1: isa.R0, Imm: 0},
		halt(),
	)
	tbl, err := WCEC(p, wcecOpts(10))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	s := tbl.String()
	if !strings.Contains(s, "wc=unbounded") || !strings.Contains(s, "wce=inf") {
		t.Fatalf("serialization lacks unbounded markers:\n%s", s)
	}
	got, err := ParseWCEC(s)
	if err != nil {
		t.Fatalf("ParseWCEC: %v", err)
	}
	r := got.Regions[0]
	if !r.WCUnbounded || !math.IsInf(r.WCEnergy, 1) {
		t.Fatalf("parsed unbounded region = %+v", r)
	}
	if got.String() != s {
		t.Fatalf("unbounded round trip drift:\n%svs\n%s", s, got.String())
	}
}

func TestWCECJSONUnbounded(t *testing.T) {
	p := rawProg(t, "spin",
		isa.Instr{Op: isa.BEQ, Rd: isa.R0, Rs1: isa.R0, Imm: 0},
		halt(),
	)
	tbl, err := WCEC(p, wcecOpts(10))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	js, err := tbl.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(js), `"wc_cycles": null`) {
		t.Fatalf("unbounded cycles should marshal as null:\n%s", js)
	}
}

func TestParseWCECErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no-header", "region 0 entry=0 kind=entry wc=1 wce=1 bc=1 bce=1 verdict=certified\n"},
		{"bad-mode", "wcectable p mode=banana regions=0 budget=1\nrepair - complete=0\n"},
		{"count-mismatch", "wcectable p mode=checkpoint regions=2 budget=1\nrepair - complete=0\n"},
		{"bad-verdict", "wcectable p mode=checkpoint regions=1 budget=1\nrepair - complete=0\nregion 0 entry=0 kind=entry wc=1 wce=1 bc=1 bce=1 verdict=maybe\n"},
		{"bad-budget", "wcectable p mode=checkpoint regions=0 budget=0\nrepair - complete=0\n"},
		{"bad-cycles", "wcectable p mode=checkpoint regions=1 budget=1\nrepair - complete=0\nregion 0 entry=0 kind=entry wc=-3 wce=1 bc=1 bce=1 verdict=certified\n"},
		{"bad-repair", "wcectable p mode=checkpoint regions=0 budget=1\nrepair 1,x complete=0\n"},
		{"dup-header", "wcectable p mode=checkpoint regions=0 budget=1\nwcectable p mode=checkpoint regions=0 budget=1\n"},
		{"id-out-of-order", "wcectable p mode=checkpoint regions=1 budget=1\nregion 5 entry=0 kind=entry wc=1 wce=1 bc=1 bce=1 verdict=certified\n"},
	}
	for _, c := range cases {
		if _, err := ParseWCEC(c.in); err == nil {
			t.Errorf("%s: ParseWCEC accepted invalid input", c.name)
		}
	}
}

func FuzzParseWCEC(f *testing.F) {
	f.Add("wcectable counted mode=checkpoint regions=1 budget=3.1e-08\nrepair 1 complete=1\nregion 0 entry=0 kind=entry wc=56 wce=6.1e-09 bc=6 bce=6.6e-10 verdict=unknown\n")
	f.Add("wcectable p mode=task regions=1 budget=2.5e-08\nrepair 3,7 complete=1\nregion 0 entry=0 kind=entry wc=unbounded wce=inf bc=4 bce=2e-10 verdict=unknown\n")
	f.Add("# comment\n\nwcectable x mode=checkpoint regions=0 budget=1\nrepair - complete=0\n")
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ParseWCEC(s)
		if err != nil {
			return
		}
		// Anything accepted must round-trip exactly.
		again, err := ParseWCEC(tbl.String())
		if err != nil {
			t.Fatalf("re-parse of serialized table failed: %v\n%s", err, tbl.String())
		}
		if again.String() != tbl.String() {
			t.Fatalf("round trip drift:\n%svs\n%s", tbl.String(), again.String())
		}
	})
}
