package analyze

// Write-after-read hazard analysis. Clank flags a store to word w as an
// idempotency violation when w's first access since the last checkpoint
// was a read. Checkpoints happen at dynamically chosen points
// (violations, buffer overflows, the watchdog, power failures), so the
// Clank-sound static predicate is global: a store S to w is hazardous
// iff some read of w reaches S with no intervening must-write of w.
// Clearing read-first state at programmer checkpoint sites would be
// unsound for Clank; the region-scoped pass that does clear at
// SysChkpt/SysTaskEnd is a separate reporting view for software
// checkpointing runtimes (Mementos, DINO), where re-execution restarts
// exactly at those sites.
//
// Both passes run word-granular (addr &^ 3), matching the tracking
// buffers in strategy.Clank.

import (
	"sort"

	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

// maxSpanWords caps how many words a single imprecise access may
// contribute before the analysis gives up and goes to ⊤. It covers the
// default 256 KiB FRAM.
const maxSpanWords = 1 << 16

// wordSet is a set of word-aligned addresses with an explicit ⊤ ("may
// be any word").
type wordSet struct {
	top bool
	w   map[uint32]struct{}
}

func newWordSet() *wordSet { return &wordSet{w: make(map[uint32]struct{})} }

func (s *wordSet) clone() *wordSet {
	c := &wordSet{top: s.top, w: make(map[uint32]struct{}, len(s.w))}
	for k := range s.w {
		c.w[k] = struct{}{}
	}
	return c
}

func (s *wordSet) setTop() {
	s.top = true
	s.w = nil
}

func (s *wordSet) add(word uint32) {
	if s.top {
		return
	}
	s.w[word] = struct{}{}
}

func (s *wordSet) del(word uint32) {
	if s.top {
		return
	}
	delete(s.w, word)
}

func (s *wordSet) has(word uint32) bool {
	if s.top {
		return true
	}
	_, ok := s.w[word]
	return ok
}

func (s *wordSet) size() int {
	if s.top {
		return -1
	}
	return len(s.w)
}

// unionWith merges o into s and reports whether s changed.
func (s *wordSet) unionWith(o *wordSet) bool {
	if s.top {
		return false
	}
	if o.top {
		s.setTop()
		return true
	}
	changed := false
	for k := range o.w {
		if _, ok := s.w[k]; !ok {
			s.w[k] = struct{}{}
			changed = true
		}
	}
	return changed
}

func (s *wordSet) sorted() []uint32 {
	out := make([]uint32, 0, len(s.w))
	for k := range s.w {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// accessInfo is the resolved address of one load/store instruction.
type accessInfo struct {
	pc    int
	store bool
	size  uint32

	known      bool   // address interval bounded — loW..hiW valid
	exact      bool   // single known address
	addr       uint32 // when exact
	loW, hiW   uint32 // inclusive word-aligned span when known
	oob        bool   // no byte of the access can land in device memory
	misaligned bool   // exact word access with addr % 4 != 0
	huge       bool   // span wider than maxSpanWords — treated as ⊤
}

// memLayout is the device memory geometry the analysis resolves
// addresses against.
type memLayout struct {
	sramSize uint32
	framSize uint32
}

func (m memLayout) validWord(w uint32) bool {
	return w < mem.SRAMBase+m.sramSize ||
		(w >= mem.FRAMBase && w < mem.FRAMBase+m.framSize)
}

// resolveAccess interprets the address operand of the load/store at pc
// under the abstract state st.
func resolveAccess(pc int, in isa.Instr, st regState, lay memLayout) *accessInfo {
	size := uint32(4)
	if in.Op == isa.LB || in.Op == isa.LBU || in.Op == isa.SB {
		size = 1
	}
	a := &accessInfo{pc: pc, store: in.Op.IsStore(), size: size}

	addr := st.r[in.Rs1].addImm(in.Imm)
	if c, ok := addr.isConst(); ok {
		a.known, a.exact, a.addr = true, true, c
		a.loW, a.hiW = c&^3, (c+size-1)&^3
		a.misaligned = size == 4 && c%4 != 0
		a.oob = !lay.validWord(a.loW) && !lay.validWord(a.hiW)
		return a
	}
	if addr.bounded() && addr.hi+int64(size)-1 <= maxU32 {
		lo, hi := uint32(addr.lo)&^3, (uint32(addr.hi)+size-1)&^3
		if (hi-lo)/4+1 > maxSpanWords {
			a.huge = true
			return a
		}
		a.known, a.loW, a.hiW = true, lo, hi
		oob := true
		for w := lo; ; w += 4 {
			if lay.validWord(w) {
				oob = false
				break
			}
			if w >= hi {
				break
			}
		}
		a.oob = oob
		return a
	}
	return a // unknown: ⊤
}

// addSpan unions the access's device-valid words into s; an unresolved
// access sends s to ⊤.
func (a *accessInfo) addSpan(s *wordSet, lay memLayout) {
	if !a.known {
		s.setTop()
		return
	}
	for w := a.loW; ; w += 4 {
		if lay.validWord(w) {
			s.add(w)
		}
		if w >= a.hiW {
			break
		}
	}
}

// Hazard is one store instruction whose target word may have been read
// first since the last checkpoint.
type Hazard struct {
	PC    int      `json:"pc"`
	Top   bool     `json:"top,omitempty"` // word set unbounded
	Words []uint32 `json:"words,omitempty"`
}

// warState is the per-point state of a WAR pass: R holds read-first
// live words; W (region pass only) the distinct words stored since the
// last boundary, which sizes the write-first buffer.
type warState struct {
	R *wordSet
	W *wordSet // nil when not tracked
}

func (s *warState) clone() *warState {
	c := &warState{R: s.R.clone()}
	if s.W != nil {
		c.W = s.W.clone()
	}
	return c
}

func (s *warState) unionWith(o *warState) bool {
	ch := s.R.unionWith(o.R)
	if s.W != nil && o.W != nil {
		ch = s.W.unionWith(o.W) || ch
	}
	return ch
}

// warResult is one pass's output.
type warResult struct {
	hazards   []Hazard
	peakRead  int // max live read-first words at any point; -1 unbounded
	peakWrite int // region pass: max distinct stored words; -1 unbounded
}

// runWAR executes the hazard dataflow. boundaries maps SYS codes that
// clear the tracking state (nil for the global, Clank-sound pass);
// pcBounds marks instruction indices that clear the state *before* the
// instruction executes (the task decomposition pass's commit-before-
// store boundaries); trackW additionally tracks stored-word pressure.
func runWAR(g *cfg, acc []*accessInfo, boundaries map[isa.Sys]bool, pcBounds map[int]bool, trackW bool, lay memLayout) *warResult {
	n := len(g.blocks)
	newState := func() *warState {
		s := &warState{R: newWordSet()}
		if trackW {
			s.W = newWordSet()
		}
		return s
	}

	clearing := func(in isa.Instr) bool {
		return in.Op == isa.SYS && boundaries != nil && boundaries[isa.Sys(in.Imm)]
	}

	// step mutates st through one instruction; onStore (optional)
	// receives the hazard word set for each store before the kill.
	step := func(st *warState, pc int, onStore func(pc int, hz *wordSet)) {
		if pcBounds != nil && pcBounds[pc] {
			st.R = newWordSet()
			if st.W != nil {
				st.W = newWordSet()
			}
		}
		in := g.code[pc]
		if clearing(in) {
			st.R = newWordSet()
			if st.W != nil {
				st.W = newWordSet()
			}
			return
		}
		a := acc[pc]
		if a == nil {
			return
		}
		if !a.store {
			a.addSpan(st.R, lay)
			return
		}
		if onStore != nil {
			onStore(pc, storeHazard(st.R, a, lay))
		}
		if st.W != nil {
			a.addSpan(st.W, lay)
		}
		if a.exact {
			st.R.del(a.addr &^ 3)
		}
	}

	in := make([]*warState, n)
	seen := make([]bool, n)
	var work []int
	if n > 0 {
		in[0] = newState()
		seen[0] = true
		work = append(work, 0)
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[id].clone()
		b := g.blocks[id]
		for pc := b.Start; pc < b.End; pc++ {
			step(st, pc, nil)
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				in[s] = st.clone()
				work = append(work, s)
				continue
			}
			if in[s].unionWith(st) {
				work = append(work, s)
			}
		}
	}

	// Final replay: collect hazards and peaks from the stable states.
	res := &warResult{}
	hazardAt := make(map[int]*wordSet)
	peak := func(cur, s int) int {
		if cur == -1 || s == -1 {
			return -1
		}
		return int(max64(int64(cur), int64(s)))
	}
	for id, b := range g.blocks {
		if !seen[id] {
			continue
		}
		st := in[id].clone()
		for pc := b.Start; pc < b.End; pc++ {
			step(st, pc, func(pc int, hz *wordSet) {
				if hz == nil {
					return
				}
				if prev, ok := hazardAt[pc]; ok {
					prev.unionWith(hz)
				} else {
					hazardAt[pc] = hz
				}
			})
			res.peakRead = peak(res.peakRead, st.R.size())
			if st.W != nil {
				res.peakWrite = peak(res.peakWrite, st.W.size())
			}
		}
	}

	pcs := make([]int, 0, len(hazardAt))
	for pc := range hazardAt {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		hz := hazardAt[pc]
		h := Hazard{PC: pc, Top: hz.top}
		if !hz.top {
			h.Words = hz.sorted()
		}
		res.hazards = append(res.hazards, h)
	}
	return res
}

// storeHazard intersects the live read-first set with the store's
// possible target words. Returns nil when the store provably cannot hit
// a read-first word.
func storeHazard(r *wordSet, a *accessInfo, lay memLayout) *wordSet {
	if r.top && !a.known {
		hz := newWordSet()
		hz.setTop()
		return hz
	}
	if !a.known {
		// Store anywhere: every live read-first word is at risk.
		if len(r.w) == 0 {
			return nil
		}
		return r.clone()
	}
	hz := newWordSet()
	for w := a.loW; ; w += 4 {
		if lay.validWord(w) && r.has(w) {
			hz.add(w)
		}
		if w >= a.hiW {
			break
		}
	}
	if len(hz.w) == 0 {
		return nil
	}
	return hz
}

// footprints returns the sets of words the reachable program may load
// and may store — the sound upper bounds on Clank's read-first and
// write-first buffer occupancy between any two checkpoints.
func footprints(g *cfg, fr *flowResult, acc []*accessInfo, lay memLayout) (read, store *wordSet) {
	read, store = newWordSet(), newWordSet()
	for id, b := range g.blocks {
		if !fr.reach[id] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			a := acc[pc]
			if a == nil {
				continue
			}
			if a.store {
				a.addSpan(store, lay)
			} else {
				a.addSpan(read, lay)
			}
		}
	}
	return read, store
}
