package analyze

// Static worst-case energy consumption (WCEC) verifier: a
// path-sensitive worst/best-case cycle and energy bound per atomic
// region, where a region is the code between two commit points —
// checkpoint-to-checkpoint intervals for the checkpointing runtimes
// (boundary SYS sites), or the static task boundaries of analyze.Tasks
// for the checkpoint-free family. The bounds are computed over the
// instruction-level control-flow graph with loop-trip inference from
// the interval dataflow, priced in cycles via cpu.CyclesFor and in
// joules via the device power model, then compared against the
// device's maximum stored energy E_max = ½·C·(V_on² − V_off²):
//
//   - WCEC ≤ E_max   ⇒ a *certificate*: every traversal of the region
//     fits inside one full capacitor charge, so forward progress is
//     statically guaranteed under any supply (the dynamic engine can
//     always complete the region from a fresh V_on boot).
//   - BCEC > E_max   ⇒ a *livelock verdict*: even the cheapest path to
//     a commit exceeds what a full charge can deliver, so no capacitor
//     charge ever completes the region — the static twin of
//     device.ErrNoProgress. A region from which no commit is reachable
//     at all (an unbounded boundary-free loop with no exit) is reported
//     the same way: BCEC = ∞.
//   - otherwise      ⇒ *unknown*: the worst path overruns the budget
//     but some path fits; whether the device progresses depends on the
//     branches taken.
//
// The bounds price compute energy only. The commit transfer itself is
// strategy-dependent (payload size × σ_B), so certificates are exact
// for the instruction stream and optimistic by the backup cost, while
// livelock verdicts remain sound (the true cost only grows).
//
// Loop bounds come from the PR-3 interval dataflow: a counted loop with
// a single ADDI induction update that executes on every cycle of the
// loop and whose pre-update interval [lo,hi] is finite admits at most
// (hi−lo)/|step| + 1 update executions, bounding the completed
// iterations. Anything else — irreducible loops, data-dependent trip
// counts the intervals cannot close — is reported as unbounded (∞),
// never as a wrapped/overflowed figure: cycle arithmetic saturates into
// an explicit infinity flag.
//
// Per-iteration pricing follows the single convention documented at
// simpleCycleCost in lints.go: every completed iteration is charged
// along the loop-continuing path (back edge taken as executed), and the
// final, exiting iteration is charged separately as the worst path from
// the header to the exit edge at that edge's own cost — so the
// not-taken exit branch is never smeared into the steady-state figure.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
)

// WCECMode selects how atomic regions are delimited.
type WCECMode string

const (
	// WCECCheckpoint delimits regions at the checkpoint boundary SYS
	// sites (DefaultBoundaries: SysChkpt and SysTaskEnd) — the commit
	// opportunities of the checkpointing runtimes.
	WCECCheckpoint WCECMode = "checkpoint"
	// WCECTask delimits regions at the static task boundaries of
	// analyze.Tasks: SysTaskEnd markers plus the WAR-cut boundaries,
	// which commit *before* the cut instruction executes.
	WCECTask WCECMode = "task"
)

// WCECVerdict is the per-region outcome.
type WCECVerdict string

const (
	// WCECCertified: WCEC ≤ E_max — statically guaranteed progress.
	WCECCertified WCECVerdict = "certified"
	// WCECLivelock: BCEC > E_max — no full charge completes the region.
	WCECLivelock WCECVerdict = "livelock"
	// WCECUnknown: some paths fit the budget, the worst does not.
	WCECUnknown WCECVerdict = "unknown"
)

// WCECChkpt is the region kind for entries that follow a checkpoint
// boundary SYS (checkpoint mode); task-mode regions reuse the task
// kinds (TaskEntry, TaskSysEnd, TaskWARCut).
const WCECChkpt = "chkpt"

// wcecRepairKind marks synthetic regions opened by a repair cut while
// the repair search re-runs the analysis; it never appears in the
// emitted table.
const wcecRepairKind = "repair"

// WCECRegion is one atomic region's bounds and verdict.
type WCECRegion struct {
	ID    int
	Entry int    // entry PC
	Kind  string // TaskEntry | WCECChkpt | TaskSysEnd | TaskWARCut

	WCCycles    uint64 // worst-case cycles to a commit (valid when !WCUnbounded)
	WCUnbounded bool
	WCEnergy    float64 // worst-case joules (+Inf when WCUnbounded)

	BCCycles    uint64  // best-case cycles to a commit (valid when !BCUnbounded)
	BCUnbounded bool    // no commit reachable at all
	BCEnergy    float64 // best-case joules (+Inf when BCUnbounded)

	Verdict WCECVerdict

	pcs []int // member PCs (nil on tables from ParseWCEC)
}

// Members returns the PCs the region can execute, sorted. It is nil on
// parsed tables: membership is an analysis artifact, not part of the
// serialized certificate.
func (r *WCECRegion) Members() []int { return r.pcs }

// WCECTable is the per-program certificate table.
type WCECTable struct {
	Prog    string
	Mode    WCECMode
	BudgetJ float64 // E_max the verdicts were judged against
	Regions []WCECRegion

	// Repair is the suggested set of additional boundary insertion
	// points (commit *before* these PCs) the greedy repair search found;
	// RepairComplete reports whether applying them makes every region
	// certified. Repair is empty when the program is already feasible.
	Repair         []int
	RepairComplete bool
}

// VerdictCounts tallies the regions per verdict.
func (t *WCECTable) VerdictCounts() (certified, livelock, unknown int) {
	for i := range t.Regions {
		switch t.Regions[i].Verdict {
		case WCECCertified:
			certified++
		case WCECLivelock:
			livelock++
		default:
			unknown++
		}
	}
	return
}

// FirstLivelock returns the first livelock region, or nil.
func (t *WCECTable) FirstLivelock() *WCECRegion {
	for i := range t.Regions {
		if t.Regions[i].Verdict == WCECLivelock {
			return &t.Regions[i]
		}
	}
	return nil
}

// RegionAt returns the region entered at the given PC, or nil.
func (t *WCECTable) RegionAt(entry int) *WCECRegion {
	for i := range t.Regions {
		if t.Regions[i].Entry == entry {
			return &t.Regions[i]
		}
	}
	return nil
}

// WCECOptions parameterizes the verifier.
type WCECOptions struct {
	Options
	// Mode selects the region delimitation; empty = WCECCheckpoint.
	Mode WCECMode
	// Power prices cycles into joules; zero value = energy.MSP430Power().
	Power energy.PowerModel
	// BudgetJ is E_max, the usable energy of a full capacitor charge
	// (½·C·(V_on²−V_off²)). Must be > 0.
	BudgetJ float64
}

// WCEC runs the static forward-progress verifier over prog.
func WCEC(prog *asm.Program, o WCECOptions) (*WCECTable, error) {
	if prog == nil || len(prog.Code) == 0 {
		return nil, fmt.Errorf("analyze: empty program")
	}
	if !(o.BudgetJ > 0) {
		return nil, fmt.Errorf("analyze: wcec: energy budget must be > 0, got %g", o.BudgetJ)
	}
	if o.Mode == "" {
		o.Mode = WCECCheckpoint
	}
	pm := o.Power
	if pm.FreqHz == 0 {
		pm = energy.MSP430Power()
	}
	if err := pm.Validate(); err != nil {
		return nil, fmt.Errorf("analyze: wcec: %w", err)
	}

	w := &wcecCalc{
		prog:   prog,
		code:   prog.Code,
		g:      buildCFG(prog.Code),
		mode:   o.Mode,
		budget: o.BudgetJ,
	}
	w.fr = runFlow(w.g)
	for c := 0; c < int(energy.NumClasses); c++ {
		w.epc[c] = pm.EnergyPerCycle(energy.InstrClass(c))
	}

	switch o.Mode {
	case WCECCheckpoint:
		w.sysBounds = map[isa.Sys]bool{}
		for _, s := range DefaultBoundaries() {
			w.sysBounds[s] = true
		}
		w.baseCuts = map[int]bool{}
		w.entries = append(w.entries, wcecEntry{0, TaskEntry})
		for pc, in := range w.code {
			if in.Op == isa.SYS && w.sysBounds[isa.Sys(in.Imm)] && pc+1 < len(w.code) {
				w.entries = append(w.entries, wcecEntry{pc + 1, WCECChkpt})
			}
		}
	case WCECTask:
		tt, err := Tasks(prog, o.Options)
		if err != nil {
			return nil, fmt.Errorf("analyze: wcec: task decomposition: %w", err)
		}
		w.sysBounds = map[isa.Sys]bool{isa.SysTaskEnd: true}
		w.baseCuts = map[int]bool{}
		for _, pc := range tt.Boundaries {
			w.baseCuts[pc] = true
		}
		for _, tk := range tt.Tasks {
			w.entries = append(w.entries, wcecEntry{tk.Entry, tk.Kind})
		}
	default:
		return nil, fmt.Errorf("analyze: wcec: unknown mode %q", o.Mode)
	}

	tbl := w.compute(nil)
	tbl.Repair, tbl.RepairComplete = w.repair(tbl)
	return tbl, nil
}

// wcecEntry is one region entry candidate.
type wcecEntry struct {
	pc   int
	kind string
}

type wcecCalc struct {
	prog      *asm.Program
	code      []isa.Instr
	g         *cfg
	fr        *flowResult
	mode      WCECMode
	budget    float64
	sysBounds map[isa.Sys]bool
	baseCuts  map[int]bool // commit-before-PC boundaries (task WAR cuts)
	entries   []wcecEntry
	epc       [energy.NumClasses]float64
}

// pcReachable reports whether the flow fixpoint reached pc's block.
func (w *wcecCalc) pcReachable(pc int) bool {
	return pc >= 0 && pc < len(w.code) && w.fr.reach[w.g.blockOf[pc]]
}

// compute runs the per-region analysis with the base boundaries plus
// the extra commit-before cuts (the repair search's candidate set).
func (w *wcecCalc) compute(extraCuts []int) *WCECTable {
	cuts := make(map[int]bool, len(w.baseCuts)+len(extraCuts))
	for pc := range w.baseCuts {
		cuts[pc] = true
	}
	entries := append([]wcecEntry(nil), w.entries...)
	for _, pc := range extraCuts {
		cuts[pc] = true
		entries = append(entries, wcecEntry{pc, wcecRepairKind})
	}

	seen := map[int]bool{}
	var regs []WCECRegion
	sort.Slice(entries, func(i, j int) bool { return entries[i].pc < entries[j].pc })
	for _, e := range entries {
		if seen[e.pc] || !w.pcReachable(e.pc) {
			continue
		}
		seen[e.pc] = true
		rg := w.buildRegion(e.pc, cuts)
		r := WCECRegion{ID: len(regs), Entry: e.pc, Kind: e.kind, pcs: rg.memberPCs()}

		bcCyc, okC := rg.shortest(func(cyc uint64, _ float64) float64 { return float64(cyc) })
		bcE, okE := rg.shortest(func(_ uint64, en float64) float64 { return en })
		if !okC || !okE {
			r.BCUnbounded = true
			r.BCEnergy = math.Inf(1)
		} else {
			r.BCCycles = uint64(bcCyc)
			r.BCEnergy = bcE
		}

		wc := w.worst(rg)
		if wc.inf {
			r.WCUnbounded = true
			r.WCEnergy = math.Inf(1)
		} else {
			r.WCCycles = wc.cyc
			r.WCEnergy = wc.e
		}

		switch {
		case !r.WCUnbounded && r.WCEnergy <= w.budget:
			r.Verdict = WCECCertified
		case r.BCEnergy > w.budget:
			r.Verdict = WCECLivelock
		default:
			r.Verdict = WCECUnknown
		}
		regs = append(regs, r)
	}
	return &WCECTable{Prog: w.prog.Name, Mode: w.mode, BudgetJ: w.budget, Regions: regs}
}

// ---------------------------------------------------------------------
// Region graph: instruction-level, with edge costs.

// rgEdge is an in-region control transfer: executing the source costs
// cyc cycles / e joules and control arrives at to.
type rgEdge struct {
	to  int
	cyc uint64
	e   float64
}

// rgTerm prices a region-ending step from a node: executing a boundary
// SYS / SysHalt (its own cost), or an edge into a commit-before cut
// (the edge's cost; the cut target is not executed).
type rgTerm struct {
	cyc uint64
	e   float64
}

type rgNode struct {
	succ []rgEdge
	term []rgTerm
}

type regionGraph struct {
	entry int
	nodes map[int]*rgNode
}

func (rg *regionGraph) memberPCs() []int {
	out := make([]int, 0, len(rg.nodes))
	for pc := range rg.nodes {
		out = append(out, pc)
	}
	sort.Ints(out)
	return out
}

// buildRegion explores the instructions reachable from entry without
// crossing a commit. Edges whose target lies outside the program are
// dropped: running off the code is a fault, not a commit, so such paths
// neither certify nor count as a best case.
func (w *wcecCalc) buildRegion(entry int, cuts map[int]bool) *regionGraph {
	n := len(w.code)
	rg := &regionGraph{entry: entry, nodes: map[int]*rgNode{}}
	stack := []int{entry}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if rg.nodes[pc] != nil {
			continue
		}
		node := &rgNode{}
		rg.nodes[pc] = node
		in := w.code[pc]
		cost := func(taken bool) (uint64, float64) {
			cyc := cpu.CyclesFor(in, taken)
			return cyc, float64(cyc) * w.epc[cpu.ClassFor(in)]
		}
		if in.Op == isa.SYS {
			ss := isa.Sys(in.Imm)
			if ss == isa.SysHalt || w.sysBounds[ss] {
				cyc, e := cost(true)
				node.term = append(node.term, rgTerm{cyc, e})
				continue // commit after this instruction: the region ends here
			}
		}
		addSucc := func(t int, taken bool) {
			if t < 0 || t >= n {
				return
			}
			cyc, e := cost(taken)
			if cuts[t] {
				// Commit happens before t executes: region over.
				node.term = append(node.term, rgTerm{cyc, e})
				return
			}
			node.succ = append(node.succ, rgEdge{t, cyc, e})
			stack = append(stack, t)
		}
		switch {
		case in.Op.IsBranch():
			addSucc(pc+1, false)
			addSucc(pc+int(in.Imm), true)
		case in.Op == isa.JAL:
			addSucc(int(in.Imm), true)
		case in.Op == isa.JALR:
			for _, rs := range w.g.returnSites {
				addSucc(rs, true)
			}
		default:
			addSucc(pc+1, true)
		}
	}
	return rg
}

// shortest computes the minimum sel-weight from the entry to any commit
// by fixpoint relaxation (weights are non-negative, so the minimum over
// walks equals the shortest path and loop bounds are irrelevant).
// ok=false means no commit is reachable.
func (rg *regionGraph) shortest(sel func(cyc uint64, e float64) float64) (float64, bool) {
	dist := map[int]float64{rg.entry: 0}
	for range rg.nodes {
		changed := false
		for pc, n := range rg.nodes {
			d, ok := dist[pc]
			if !ok {
				continue
			}
			for _, e := range n.succ {
				nd := d + sel(e.cyc, e.e)
				if cur, ok := dist[e.to]; !ok || nd < cur {
					dist[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	best, ok := 0.0, false
	for pc, n := range rg.nodes {
		d, reached := dist[pc]
		if !reached {
			continue
		}
		for _, t := range n.term {
			v := d + sel(t.cyc, t.e)
			if !ok || v < best {
				best, ok = v, true
			}
		}
	}
	return best, ok
}

// ---------------------------------------------------------------------
// Worst case: saturating cost arithmetic and loop collapse.

// wcost is a (cycles, joules) pair with an explicit infinity: cycle
// arithmetic saturates into inf instead of wrapping, so unbounded loops
// report ∞, never an overflowed figure.
type wcost struct {
	cyc uint64
	e   float64
	inf bool
}

const maxWCycles = uint64(1) << 62

var infW = wcost{inf: true}

func addW(a, b wcost) wcost {
	if a.inf || b.inf {
		return infW
	}
	c := a.cyc + b.cyc
	if c < a.cyc || c > maxWCycles {
		return infW
	}
	return wcost{cyc: c, e: a.e + b.e}
}

func mulW(a wcost, k uint64) wcost {
	if a.inf {
		return infW
	}
	if k == 0 || a.cyc == 0 && a.e == 0 {
		return wcost{cyc: 0, e: a.e * float64(k)}
	}
	if a.cyc > 0 && k > maxWCycles/a.cyc {
		return infW
	}
	return wcost{cyc: a.cyc * k, e: a.e * float64(k)}
}

// maxW takes the component-wise maximum: the result bounds every
// candidate path in both components (possibly achieved by different
// paths, which only loosens the bound soundly).
func maxW(a, b wcost) wcost {
	if a.inf || b.inf {
		return infW
	}
	return wcost{cyc: maxU64(a.cyc, b.cyc), e: math.Max(a.e, b.e)}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// cNode is a node of the mutable collapse graph: a single instruction,
// or (after reduce) a summarized loop standing at its header PC.
type cNode struct {
	succ      []cEdge
	term      *wcost // merged worst region-ending cost, nil if none
	members   []int  // original PCs (nil = the single instruction at the key)
	collapsed bool
}

type cEdge struct {
	to int
	c  wcost
}

// worst computes the worst-case cost from the region entry to a commit:
// collapse every loop into a bounded (or ∞) summary node, then take the
// longest path over the resulting DAG. A node from which no commit is
// reachable contributes ∞ — a traversal reaching it never commits.
func (w *wcecCalc) worst(rg *regionGraph) wcost {
	g := map[int]*cNode{}
	for pc, n := range rg.nodes {
		cn := &cNode{}
		for _, e := range n.succ {
			cn.succ = append(cn.succ, cEdge{e.to, wcost{cyc: e.cyc, e: e.e}})
		}
		for _, t := range n.term {
			tc := wcost{cyc: t.cyc, e: t.e}
			if cn.term == nil {
				cn.term = &tc
			} else {
				m := maxW(*cn.term, tc)
				cn.term = &m
			}
		}
		g[pc] = cn
	}
	allowed := map[int]bool{}
	for pc := range g {
		allowed[pc] = true
	}
	w.reduce(g, allowed, rg.entry)
	return w.dagWorst(g, rg.entry)
}

// reduce collapses every cycle inside the allowed set, innermost first.
func (w *wcecCalc) reduce(g map[int]*cNode, allowed map[int]bool, entry int) {
	for _, comp := range tarjanNodes(g, allowed) {
		if !cyclicComp(g, comp) {
			continue
		}
		compSet := map[int]bool{}
		for _, id := range comp {
			compSet[id] = true
		}
		h, ok := header(g, compSet, entry)
		if !ok {
			w.collapseIrreducible(g, compSet, entry)
			continue
		}
		inner := map[int]bool{}
		for id := range compSet {
			if id != h {
				inner[id] = true
			}
		}
		w.reduce(g, inner, entry)
		// Inner collapse may have deleted nodes; refresh membership.
		live := map[int]bool{}
		for id := range compSet {
			if g[id] != nil {
				live[id] = true
			}
		}
		w.summarizeLoop(g, live, h)
	}
}

// tarjanNodes computes SCCs of the collapse graph restricted to allowed.
func tarjanNodes(g map[int]*cNode, allowed map[int]bool) [][]int {
	ids := make([]int, 0, len(allowed))
	for id := range allowed {
		if g[id] != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var out [][]int
	next := 0

	type frame struct {
		v, succIdx int
	}
	var dfs []frame
	for _, root := range ids {
		if _, done := index[root]; done {
			continue
		}
		dfs = append(dfs[:0], frame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			node := g[f.v]
			if f.succIdx < len(node.succ) {
				t := node.succ[f.succIdx].to
				f.succIdx++
				if !allowed[t] || g[t] == nil {
					continue
				}
				if _, done := index[t]; !done {
					index[t], low[t] = next, next
					next++
					stack = append(stack, t)
					onStack[t] = true
					dfs = append(dfs, frame{t, 0})
				} else if onStack[t] {
					low[f.v] = min64i(low[f.v], index[t])
				}
				continue
			}
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				low[p] = min64i(low[p], low[v])
			}
			if low[v] == index[v] {
				var comp []int
				for {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[x] = false
					comp = append(comp, x)
					if x == v {
						break
					}
				}
				sort.Ints(comp)
				out = append(out, comp)
			}
		}
	}
	return out
}

func cyclicComp(g map[int]*cNode, comp []int) bool {
	if len(comp) > 1 {
		return true
	}
	for _, e := range g[comp[0]].succ {
		if e.to == comp[0] {
			return true
		}
	}
	return false
}

// header finds the unique loop entry: the one node of the component
// receiving edges from outside it (the region entry counts as an
// outside edge). Multiple entries mean an irreducible loop.
func header(g map[int]*cNode, compSet map[int]bool, entry int) (int, bool) {
	heads := map[int]bool{}
	if compSet[entry] {
		heads[entry] = true
	}
	for id, n := range g {
		if compSet[id] {
			continue
		}
		for _, e := range n.succ {
			if compSet[e.to] {
				heads[e.to] = true
			}
		}
	}
	if len(heads) != 1 {
		return 0, false
	}
	for h := range heads {
		return h, true
	}
	return 0, false
}

// collapseIrreducible folds a multiple-entry component into one node
// whose every continuation is ∞ — sound, never precise.
func (w *wcecCalc) collapseIrreducible(g map[int]*cNode, compSet map[int]bool, entry int) {
	rep := -1
	if compSet[entry] {
		rep = entry
	} else {
		for id := range compSet {
			if rep < 0 || id < rep {
				rep = id
			}
		}
	}
	node := &cNode{collapsed: true}
	exits := map[int]bool{}
	hasTerm := false
	for id := range compSet {
		n := g[id]
		node.members = append(node.members, nodeMembers(id, n)...)
		for _, e := range n.succ {
			if !compSet[e.to] {
				exits[e.to] = true
			}
		}
		if n.term != nil {
			hasTerm = true
		}
	}
	sort.Ints(node.members)
	for t := range exits {
		node.succ = append(node.succ, cEdge{t, infW})
	}
	sort.Slice(node.succ, func(i, j int) bool { return node.succ[i].to < node.succ[j].to })
	if hasTerm {
		t := infW
		node.term = &t
	}
	for id := range compSet {
		if id != rep {
			delete(g, id)
		}
	}
	g[rep] = node
	retargetEdges(g, compSet, rep)
}

// retargetEdges rewires every edge pointing into the (now deleted)
// component to its representative.
func retargetEdges(g map[int]*cNode, compSet map[int]bool, rep int) {
	for _, n := range g {
		for i := range n.succ {
			if compSet[n.succ[i].to] {
				n.succ[i].to = rep
			}
		}
	}
}

func nodeMembers(id int, n *cNode) []int {
	if n.members != nil {
		return n.members
	}
	return []int{id}
}

// summarizeLoop replaces a single-header loop (inner loops already
// collapsed) by one node at the header: exit edges and terminals are
// re-priced as trips·(worst cycle) + the worst header→exit suffix.
func (w *wcecCalc) summarizeLoop(g map[int]*cNode, compSet map[int]bool, h int) {
	trips, known := w.tripBound(g, compSet, h)

	// Longest paths from the header through the loop body: the component
	// minus the back edges (edges into h) is a DAG after inner collapse.
	order, acyclic := topoOrder(g, compSet, h)
	if !acyclic {
		w.collapseIrreducible(g, compSet, h)
		return
	}
	dag := map[int]wcost{h: {}}
	for _, id := range order {
		d, ok := dag[id]
		if !ok {
			continue
		}
		for _, e := range g[id].succ {
			if e.to == h || !compSet[e.to] {
				continue
			}
			cand := addW(d, e.c)
			if cur, ok := dag[e.to]; !ok {
				dag[e.to] = cand
			} else {
				dag[e.to] = maxW(cur, cand)
			}
		}
	}

	var cycleW wcost
	for id := range compSet {
		d, ok := dag[id]
		if !ok {
			continue
		}
		for _, e := range g[id].succ {
			if e.to == h {
				cycleW = maxW(cycleW, addW(d, e.c))
			}
		}
	}
	base := infW
	if known {
		base = mulW(cycleW, trips)
	}

	node := &cNode{collapsed: true}
	exits := map[int]wcost{}
	var term *wcost
	for id := range compSet {
		n := g[id]
		node.members = append(node.members, nodeMembers(id, n)...)
		d, reached := dag[id]
		if !reached {
			continue
		}
		for _, e := range n.succ {
			if compSet[e.to] {
				continue
			}
			c := addW(base, addW(d, e.c))
			if cur, ok := exits[e.to]; ok {
				c = maxW(cur, c)
			}
			exits[e.to] = c
		}
		if n.term != nil {
			c := addW(base, addW(d, *n.term))
			if term == nil {
				term = &c
			} else {
				m := maxW(*term, c)
				term = &m
			}
		}
	}
	sort.Ints(node.members)
	tos := make([]int, 0, len(exits))
	for t := range exits {
		tos = append(tos, t)
	}
	sort.Ints(tos)
	for _, t := range tos {
		node.succ = append(node.succ, cEdge{t, exits[t]})
	}
	node.term = term
	for id := range compSet {
		if id != h {
			delete(g, id)
		}
	}
	g[h] = node
	retargetEdges(g, compSet, h)
}

// topoOrder orders the component with the header's in-edges removed;
// acyclic=false reports a leftover cycle (an irreducible remnant).
func topoOrder(g map[int]*cNode, compSet map[int]bool, h int) ([]int, bool) {
	indeg := map[int]int{}
	for id := range compSet {
		indeg[id] = 0
	}
	for id := range compSet {
		for _, e := range g[id].succ {
			if e.to != h && compSet[e.to] {
				indeg[e.to]++
			}
		}
	}
	var queue, order []int
	for id := range compSet {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, e := range g[id].succ {
			if e.to == h || !compSet[e.to] {
				continue
			}
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	return order, len(order) == len(compSet)
}

// tripBound bounds the completed cycles through the loop header per
// entry: a counted-loop induction update `ADDI r, r, k` that is the
// only writer of r in the loop and executes on every cycle admits at
// most (hi−lo)/|k| + 1 executions, with [lo, hi] the interval analysis'
// bound on r immediately before the update.
func (w *wcecCalc) tripBound(g map[int]*cNode, compSet map[int]bool, h int) (uint64, bool) {
	var backs []int
	for id := range compSet {
		for _, e := range g[id].succ {
			if e.to == h {
				backs = append(backs, id)
				break
			}
		}
	}
	var allPCs []int
	for id := range compSet {
		allPCs = append(allPCs, nodeMembers(id, g[id])...)
	}

	best, found := uint64(0), false
	for u := range compSet {
		if g[u].collapsed {
			continue // a collapsed inner loop is not a single update site
		}
		in := w.code[u]
		if in.Op != isa.ADDI || in.Rd != in.Rs1 || in.Rd == isa.R0 || in.Imm == 0 {
			continue
		}
		r := in.Rd
		unique := true
		for _, pc := range allPCs {
			if pc != u && writesReg(w.code[pc], r) {
				unique = false
				break
			}
		}
		if !unique {
			continue
		}
		if u != h && cycleAvoids(g, compSet, h, u, backs) {
			continue
		}
		if !w.pcReachable(u) {
			continue
		}
		iv := w.fr.stateAt[u].r[r]
		if iv.lo <= negInf/2 || iv.hi >= posInf/2 || iv.hi < iv.lo {
			continue
		}
		k := int64(in.Imm)
		if k < 0 {
			k = -k
		}
		steps := uint64((iv.hi-iv.lo)/k) + 1
		if !found || steps < best {
			best, found = steps, true
		}
	}
	return best, found
}

// cycleAvoids reports whether some cycle through h dodges node u: a
// back-edge source other than u reachable from h without touching u.
func cycleAvoids(g map[int]*cNode, compSet map[int]bool, h, u int, backs []int) bool {
	backSet := map[int]bool{}
	for _, b := range backs {
		if b != u {
			backSet[b] = true
		}
	}
	if len(backSet) == 0 {
		return false
	}
	seen := map[int]bool{u: true}
	stack := []int{h}
	if h == u {
		return false
	}
	seen[h] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if backSet[id] {
			return true
		}
		for _, e := range g[id].succ {
			if compSet[e.to] && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return false
}

// writesReg reports whether executing in writes register r, in lockstep
// with the interpreter's destinations (R0 is hardwired).
func writesReg(in isa.Instr, r isa.Reg) bool {
	if r == isa.R0 {
		return false
	}
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA,
		isa.SLT, isa.SLTU, isa.MUL, isa.DIV, isa.REM,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI,
		isa.SLTI, isa.LUI, isa.LW, isa.LB, isa.LBU, isa.JAL, isa.JALR:
		return in.Rd == r
	case isa.SYS:
		return isa.Sys(in.Imm) == isa.SysSense && in.Rd == r
	}
	return false
}

// dagWorst takes the longest path over the reduced (acyclic) graph:
// W(n) = max(term(n), max over edges of cost + W(to)); a node with no
// continuation and no terminal never commits, which is ∞.
func (w *wcecCalc) dagWorst(g map[int]*cNode, entry int) wcost {
	memo := map[int]*wcost{}
	var visit func(id int) wcost
	var stack []int
	onPath := map[int]bool{}
	visit = func(id int) wcost {
		if v := memo[id]; v != nil {
			return *v
		}
		if onPath[id] {
			return infW // leftover cycle: unbounded
		}
		n := g[id]
		if n == nil {
			return infW
		}
		onPath[id] = true
		stack = append(stack, id)
		best := infW
		have := false
		if n.term != nil {
			best, have = *n.term, true
		}
		for _, e := range n.succ {
			c := addW(e.c, visit(e.to))
			if !have {
				best, have = c, true
			} else {
				best = maxW(best, c)
			}
		}
		onPath[id] = false
		stack = stack[:len(stack)-1]
		if !have {
			best = infW
		}
		memo[id] = &best
		return best
	}
	return visit(entry)
}

// ---------------------------------------------------------------------
// Repair: the greedy boundary-insertion search.

// maxRepairCuts caps the repair search.
const maxRepairCuts = 64

// repair searches for additional commit-before boundaries that make
// every region's WCEC fit the budget. The cut point for an over-budget
// region is the innermost loop header (committing per iteration), or —
// for loop-free overruns — the midpoint of the worst path by cost. The
// set is greedy-minimal: each cut is added only because some region
// still overruns without it.
func (w *wcecCalc) repair(base *WCECTable) ([]int, bool) {
	feasible := func(t *WCECTable) *WCECRegion {
		for i := range t.Regions {
			r := &t.Regions[i]
			if r.WCUnbounded || r.WCEnergy > w.budget {
				return r
			}
		}
		return nil
	}
	if feasible(base) == nil {
		return nil, true
	}
	var cuts []int
	cutSet := map[int]bool{}
	tbl := base
	for len(cuts) < maxRepairCuts {
		bad := feasible(tbl)
		if bad == nil {
			return cuts, true
		}
		pc, ok := w.repairPoint(bad.Entry, cuts)
		if !ok || cutSet[pc] {
			return cuts, false
		}
		cutSet[pc] = true
		cuts = append(cuts, pc)
		sort.Ints(cuts)
		tbl = w.compute(cuts)
	}
	return cuts, feasible(tbl) == nil
}

// repairPoint picks the boundary insertion PC for one offending region.
func (w *wcecCalc) repairPoint(entry int, extraCuts []int) (int, bool) {
	cuts := make(map[int]bool, len(w.baseCuts)+len(extraCuts))
	for pc := range w.baseCuts {
		cuts[pc] = true
	}
	for _, pc := range extraCuts {
		cuts[pc] = true
	}
	rg := w.buildRegion(entry, cuts)

	// Prefer the innermost loop header: a boundary there commits every
	// iteration, the classic fix for an unbounded or over-long loop.
	g := map[int]*cNode{}
	for pc, n := range rg.nodes {
		cn := &cNode{}
		for _, e := range n.succ {
			cn.succ = append(cn.succ, cEdge{e.to, wcost{cyc: e.cyc, e: e.e}})
		}
		g[pc] = cn
	}
	allowed := map[int]bool{}
	for pc := range g {
		allowed[pc] = true
	}
	if h, ok := innermostHeader(g, allowed, rg.entry); ok {
		return h, true
	}

	// Loop-free: cut before the PC where the worst path crosses half
	// its total cost.
	w.reduce(g, allowed, rg.entry)
	total := w.dagWorst(g, rg.entry)
	if total.inf || total.cyc == 0 {
		return 0, false
	}
	half := total.cyc / 2
	acc := uint64(0)
	id := rg.entry
	for acc < half {
		n := g[id]
		if n == nil || len(n.succ) == 0 {
			break
		}
		bestEdge, bestC := -1, infW
		for i, e := range n.succ {
			c := addW(e.c, w.dagWorst(g, e.to))
			if bestEdge < 0 || (!c.inf && (bestC.inf || c.cyc > bestC.cyc)) {
				bestEdge, bestC = i, c
			}
		}
		e := n.succ[bestEdge]
		acc += e.c.cyc
		id = e.to
	}
	if id == rg.entry {
		return 0, false
	}
	return id, true
}

// innermostHeader descends the loop nest of the region and returns the
// deepest single-header loop's header.
func innermostHeader(g map[int]*cNode, allowed map[int]bool, entry int) (int, bool) {
	for _, comp := range tarjanNodes(g, allowed) {
		if !cyclicComp(g, comp) {
			continue
		}
		compSet := map[int]bool{}
		for _, id := range comp {
			compSet[id] = true
		}
		h, ok := header(g, compSet, entry)
		if !ok {
			return comp[0], true // irreducible: any cut point helps
		}
		inner := map[int]bool{}
		for id := range compSet {
			if id != h {
				inner[id] = true
			}
		}
		if ih, ok := innermostHeader(g, inner, entry); ok {
			return ih, true
		}
		return h, true
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Serialization: one line per region, ParseWCEC round-trips.

// String serializes the certificate table:
//
//	wcectable <prog> mode=<m> regions=<n> budget=<g>
//	repair <pc,...|-> complete=<0|1>
//	region <id> entry=<pc> kind=<k> wc=<cyc|unbounded> wce=<J|inf> bc=<cyc|unbounded> bce=<J|inf> verdict=<v>
func (t *WCECTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wcectable %s mode=%s regions=%d budget=%g\n",
		t.Prog, t.Mode, len(t.Regions), t.BudgetJ)
	if len(t.Repair) == 0 {
		fmt.Fprintf(&b, "repair - complete=%d\n", boolInt(t.RepairComplete))
	} else {
		pcs := make([]string, len(t.Repair))
		for i, pc := range t.Repair {
			pcs[i] = strconv.Itoa(pc)
		}
		fmt.Fprintf(&b, "repair %s complete=%d\n", strings.Join(pcs, ","), boolInt(t.RepairComplete))
	}
	for i := range t.Regions {
		r := &t.Regions[i]
		fmt.Fprintf(&b, "region %d entry=%d kind=%s wc=%s wce=%s bc=%s bce=%s verdict=%s\n",
			r.ID, r.Entry, r.Kind,
			cyclesStr(r.WCCycles, r.WCUnbounded), jouleStr(r.WCEnergy),
			cyclesStr(r.BCCycles, r.BCUnbounded), jouleStr(r.BCEnergy),
			r.Verdict)
	}
	return b.String()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func cyclesStr(c uint64, unbounded bool) string {
	if unbounded {
		return "unbounded"
	}
	return strconv.FormatUint(c, 10)
}

func jouleStr(e float64) string {
	if math.IsInf(e, 1) {
		return "inf"
	}
	return strconv.FormatFloat(e, 'g', -1, 64)
}

// JSON emits the table with unbounded bounds as nulls (IEEE infinities
// have no JSON encoding).
func (t *WCECTable) JSON() ([]byte, error) {
	type region struct {
		ID       int      `json:"id"`
		Entry    int      `json:"entry"`
		Kind     string   `json:"kind"`
		WCCycles *uint64  `json:"wc_cycles"`
		WCEnergy *float64 `json:"wce_joules"`
		BCCycles *uint64  `json:"bc_cycles"`
		BCEnergy *float64 `json:"bce_joules"`
		Verdict  string   `json:"verdict"`
	}
	type table struct {
		Prog           string   `json:"prog"`
		Mode           string   `json:"mode"`
		BudgetJ        float64  `json:"budget_joules"`
		Regions        []region `json:"regions"`
		Repair         []int    `json:"repair,omitempty"`
		RepairComplete bool     `json:"repair_complete"`
	}
	out := table{Prog: t.Prog, Mode: string(t.Mode), BudgetJ: t.BudgetJ,
		Repair: t.Repair, RepairComplete: t.RepairComplete}
	for i := range t.Regions {
		r := &t.Regions[i]
		jr := region{ID: r.ID, Entry: r.Entry, Kind: r.Kind, Verdict: string(r.Verdict)}
		if !r.WCUnbounded {
			wc, we := r.WCCycles, r.WCEnergy
			jr.WCCycles, jr.WCEnergy = &wc, &we
		}
		if !r.BCUnbounded {
			bc, be := r.BCCycles, r.BCEnergy
			jr.BCCycles, jr.BCEnergy = &bc, &be
		}
		out.Regions = append(out.Regions, jr)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ParseWCEC parses the String serialization back into a table. Blank
// lines and #-comments are ignored; the region count is cross-checked
// against the header. Parsed tables have no Members (membership is not
// serialized).
func ParseWCEC(s string) (*WCECTable, error) {
	t := &WCECTable{}
	sawHeader := false
	declared := 0
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "wcectable":
			if sawHeader {
				return nil, fmt.Errorf("analyze: line %d: duplicate wcectable header", lineNo)
			}
			if len(f) != 5 {
				return nil, fmt.Errorf("analyze: line %d: want 'wcectable <prog> mode= regions= budget=', got %d fields", lineNo, len(f))
			}
			sawHeader = true
			t.Prog = f[1]
			mode, err := parseKeyStr(f[2], "mode")
			if err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if m := WCECMode(mode); m != WCECCheckpoint && m != WCECTask {
				return nil, fmt.Errorf("analyze: line %d: unknown mode %q", lineNo, mode)
			}
			t.Mode = WCECMode(mode)
			if declared, err = parseKeyInt(f[3], "regions"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if t.BudgetJ, err = parseKeyFloat(f[4], "budget"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if declared < 0 || !(t.BudgetJ > 0) {
				return nil, fmt.Errorf("analyze: line %d: invalid header (regions=%d budget=%g)", lineNo, declared, t.BudgetJ)
			}
		case "repair":
			if !sawHeader {
				return nil, fmt.Errorf("analyze: line %d: repair before wcectable header", lineNo)
			}
			if len(f) != 3 {
				return nil, fmt.Errorf("analyze: line %d: want 'repair <pcs|-> complete=<0|1>', got %d fields", lineNo, len(f))
			}
			if f[1] != "-" {
				for _, p := range strings.Split(f[1], ",") {
					pc, err := strconv.Atoi(p)
					if err != nil || pc < 0 {
						return nil, fmt.Errorf("analyze: line %d: bad repair pc %q", lineNo, p)
					}
					t.Repair = append(t.Repair, pc)
				}
			}
			c, err := parseKeyInt(f[2], "complete")
			if err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if c != 0 && c != 1 {
				return nil, fmt.Errorf("analyze: line %d: complete=%d, want 0 or 1", lineNo, c)
			}
			t.RepairComplete = c == 1
		case "region":
			if !sawHeader {
				return nil, fmt.Errorf("analyze: line %d: region before wcectable header", lineNo)
			}
			if len(f) != 9 {
				return nil, fmt.Errorf("analyze: line %d: want 9 region fields, got %d", lineNo, len(f))
			}
			var r WCECRegion
			var err error
			if r.ID, err = strconv.Atoi(f[1]); err != nil {
				return nil, fmt.Errorf("analyze: line %d: bad region id %q", lineNo, f[1])
			}
			if r.Entry, err = parseKeyInt(f[2], "entry"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if r.Kind, err = parseKeyStr(f[3], "kind"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if r.WCCycles, r.WCUnbounded, err = parseKeyCycles(f[4], "wc"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if r.WCEnergy, err = parseKeyJoules(f[5], "wce"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if r.BCCycles, r.BCUnbounded, err = parseKeyCycles(f[6], "bc"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			if r.BCEnergy, err = parseKeyJoules(f[7], "bce"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			v, err := parseKeyStr(f[8], "verdict")
			if err != nil {
				return nil, fmt.Errorf("analyze: line %d: %v", lineNo, err)
			}
			switch WCECVerdict(v) {
			case WCECCertified, WCECLivelock, WCECUnknown:
				r.Verdict = WCECVerdict(v)
			default:
				return nil, fmt.Errorf("analyze: line %d: unknown verdict %q", lineNo, v)
			}
			if r.Entry < 0 || r.ID != len(t.Regions) {
				return nil, fmt.Errorf("analyze: line %d: region id/entry out of order (id=%d entry=%d)", lineNo, r.ID, r.Entry)
			}
			t.Regions = append(t.Regions, r)
		default:
			return nil, fmt.Errorf("analyze: line %d: unknown record %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: scanning wcec table: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("analyze: no wcectable header")
	}
	if len(t.Regions) != declared {
		return nil, fmt.Errorf("analyze: header declares %d regions, found %d", declared, len(t.Regions))
	}
	return t, nil
}

func parseKeyStr(field, key string) (string, error) {
	v, ok := strings.CutPrefix(field, key+"=")
	if !ok || v == "" {
		return "", fmt.Errorf("want %s=, got %q", key, field)
	}
	return v, nil
}

func parseKeyFloat(field, key string) (float64, error) {
	v, err := parseKeyStr(field, key)
	if err != nil {
		return 0, err
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("bad %s value %q", key, v)
	}
	return x, nil
}

func parseKeyCycles(field, key string) (uint64, bool, error) {
	v, err := parseKeyStr(field, key)
	if err != nil {
		return 0, false, err
	}
	if v == "unbounded" {
		return 0, true, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s value %q", key, v)
	}
	return n, false, nil
}

func parseKeyJoules(field, key string) (float64, error) {
	v, err := parseKeyStr(field, key)
	if err != nil {
		return 0, err
	}
	if v == "inf" {
		return math.Inf(1), nil
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		return 0, fmt.Errorf("bad %s value %q", key, v)
	}
	return x, nil
}
