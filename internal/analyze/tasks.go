package analyze

// tasks.go — automatic task decomposition for checkpoint-free,
// Alpaca-style task runtimes. A task runtime executes tasks with
// write-privatized buffers and commits atomically at task boundaries;
// on a power failure it re-executes from the last committed boundary
// with no volatile checkpoint to restore. Re-execution is only safe
// when tasks are idempotent — no task may read a word it has already
// overwritten — so the decomposition reuses the WAR machinery: starting
// from the program's explicit task-end markers, every store the
// region-scoped WAR pass still flags becomes a commit-before-store
// boundary, iterated to a fixed point (cutting a hazard can only shrink
// the remaining read-first state, so the iteration is monotone).
//
// The per-task static write-set footprints size the privatization
// buffer the way Eq. 15 sizes Clank's circular buffer: a buffer of
// BufWords words provably never overflows, and BufWords·τ_store prices
// the worst-case commit period.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// Task boundary kinds.
const (
	// TaskEntry is the program entry.
	TaskEntry = "entry"
	// TaskSysEnd is an entry after an explicit SYS task-end marker.
	TaskSysEnd = "task-end"
	// TaskWARCut is a commit-before-store WAR cut: the runtime must
	// commit immediately before executing the entry instruction.
	TaskWARCut = "war-store"
)

// Task is one idempotent execution unit: execution from Entry up to
// (but not across) the next task boundary. Every WAR hazard inside the
// task has been cut, so re-running it from Entry after a power failure
// reads the same values it read the first time.
type Task struct {
	ID    int    `json:"id"`
	Entry int    `json:"entry"` // entry PC
	Kind  string `json:"kind"`  // boundary kind that created the entry
	// ReadWords counts distinct words the task may load; -1 unbounded.
	ReadWords int `json:"read_words"`
	// StoreTop marks an unresolvable store: the write set is unbounded
	// and StoreWords is nil.
	StoreTop bool `json:"store_top,omitempty"`
	// StoreWords is the sorted static write-set footprint — the words a
	// privatization buffer must hold while this task is in flight.
	StoreWords []uint32 `json:"store_words,omitempty"`
}

// TaskTable is the serializable result of the decomposition pass.
type TaskTable struct {
	Prog  string `json:"prog"`
	Tasks []Task `json:"tasks"`
	// Boundaries are the WAR-cut instruction indices: a task runtime
	// commits immediately before executing these PCs.
	Boundaries []int `json:"boundaries,omitempty"`
	// BufWords is the privatization-buffer bound: the largest task
	// write set in words, -1 when some task is unbounded. A buffer of
	// BufWords words provably never overflows — the task-runtime analog
	// of the Eq. 15 circular-buffer bound.
	BufWords int `json:"buf_words"`
	// TauStore is the static cycles-per-store of the innermost simple
	// store loop (0 when the program has none); BufWords·TauStore
	// estimates the worst-case commit period the way Eq. 15 prices
	// (N−n+1+w)·τ_store.
	TauStore float64 `json:"tau_store,omitempty"`
}

// Tasks decomposes prog into idempotent tasks. The zero Options picks
// the device memory defaults; Options.Boundaries is ignored — task
// decomposition always anchors on SysTaskEnd, the marker task runtimes
// commit at.
func Tasks(prog *asm.Program, o Options) (*TaskTable, error) {
	if prog == nil || len(prog.Code) == 0 {
		return nil, fmt.Errorf("analyze: empty program")
	}
	lay := memLayout{sramSize: uint32(defaultSRAMSize), framSize: uint32(defaultFRAMSize)}
	if o.SRAMSize > 0 {
		lay.sramSize = uint32(o.SRAMSize)
	}
	if o.FRAMSize > 0 {
		lay.framSize = uint32(o.FRAMSize)
	}

	g := buildCFG(prog.Code)
	fr := runFlow(g)
	acc := make([]*accessInfo, len(prog.Code))
	for id, b := range g.blocks {
		if !fr.reach[id] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := prog.Code[pc]
			if in.Op.IsLoad() || in.Op.IsStore() {
				acc[pc] = resolveAccess(pc, in, fr.stateAt[pc], lay)
			}
		}
	}

	sysBounds := map[isa.Sys]bool{isa.SysTaskEnd: true}

	// Fixed point: every store the WAR pass still flags becomes a
	// boundary. Each round adds at least one PC or stops, so the loop
	// is bounded by the instruction count.
	pcBounds := make(map[int]bool)
	for i := 0; i <= len(prog.Code); i++ {
		res := runWAR(g, acc, sysBounds, pcBounds, false, lay)
		grew := false
		for _, h := range res.hazards {
			if !pcBounds[h.PC] {
				pcBounds[h.PC] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	// Task entries: program entry, the instruction after every
	// reachable task-end marker, and every WAR cut. A WAR cut wins
	// when it collides with another kind — the runtime commits before
	// that PC either way.
	kindAt := map[int]string{0: TaskEntry}
	for pc, in := range prog.Code {
		if in.Op == isa.SYS && isa.Sys(in.Imm) == isa.SysTaskEnd && pc+1 < len(prog.Code) {
			if _, taken := kindAt[pc+1]; !taken {
				kindAt[pc+1] = TaskSysEnd
			}
		}
	}
	for pc := range pcBounds {
		if pc != 0 {
			kindAt[pc] = TaskWARCut
		}
	}

	t := &TaskTable{Prog: prog.Name, BufWords: 0}
	for pc := range pcBounds {
		t.Boundaries = append(t.Boundaries, pc)
	}
	sort.Ints(t.Boundaries)

	entries := make([]int, 0, len(kindAt))
	for pc := range kindAt {
		entries = append(entries, pc)
	}
	sort.Ints(entries)
	for _, pc := range entries {
		if !fr.reach[g.blockOf[pc]] {
			continue
		}
		reads, stores := taskFootprint(g, acc, pcBounds, pc, lay)
		task := Task{
			ID:        len(t.Tasks),
			Entry:     pc,
			Kind:      kindAt[pc],
			ReadWords: reads.size(),
			StoreTop:  stores.top,
		}
		if !stores.top {
			if ws := stores.sorted(); len(ws) > 0 {
				task.StoreWords = ws
			}
		}
		t.Tasks = append(t.Tasks, task)
		if t.BufWords >= 0 {
			if stores.top {
				t.BufWords = -1
			} else if n := len(task.StoreWords); n > t.BufWords {
				t.BufWords = n
			}
		}
	}

	for _, l := range analyzeLoops(g, sysBounds) {
		if l.Simple && l.Stores > 0 && (t.TauStore == 0 || l.TauStore < t.TauStore) {
			t.TauStore = l.TauStore
		}
	}
	return t, nil
}

// taskFootprint collects the read and store word sets of the task
// entered at entry: every instruction reachable from entry without
// crossing a task boundary. A boundary PC other than the entry itself
// starts the next task and is excluded; task-end markers and halts
// close the task.
func taskFootprint(g *cfg, acc []*accessInfo, pcBounds map[int]bool, entry int, lay memLayout) (reads, stores *wordSet) {
	reads, stores = newWordSet(), newWordSet()
	seen := map[int]bool{entry: true}
	work := []int{entry}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc != entry && pcBounds[pc] {
			continue
		}
		if a := acc[pc]; a != nil {
			if a.store {
				a.addSpan(stores, lay)
			} else {
				a.addSpan(reads, lay)
			}
		}
		in := g.code[pc]
		if in.Op == isa.SYS {
			if s := isa.Sys(in.Imm); s == isa.SysHalt || s == isa.SysTaskEnd {
				continue
			}
		}
		b := g.blocks[g.blockOf[pc]]
		if pc+1 < b.End {
			if !seen[pc+1] {
				seen[pc+1] = true
				work = append(work, pc+1)
			}
			continue
		}
		for _, s := range b.Succs {
			spc := g.blocks[s].Start
			if !seen[spc] {
				seen[spc] = true
				work = append(work, spc)
			}
		}
	}
	return reads, stores
}

// BoundarySet returns the WAR-cut boundaries keyed by PC, the form the
// task runtime consumes.
func (t *TaskTable) BoundarySet() map[uint32]struct{} {
	out := make(map[uint32]struct{}, len(t.Boundaries))
	for _, pc := range t.Boundaries {
		if pc >= 0 {
			out[uint32(pc)] = struct{}{}
		}
	}
	return out
}

// FootprintAt returns the static write-set of the task entered at PC
// entry. top reports an unbounded set; ok is false when entry is not a
// task entry.
func (t *TaskTable) FootprintAt(entry uint32) (words []uint32, top, ok bool) {
	for i := range t.Tasks {
		if t.Tasks[i].Entry == int(entry) {
			return t.Tasks[i].StoreWords, t.Tasks[i].StoreTop, true
		}
	}
	return nil, false, false
}

// String renders the table in the line format ParseTaskTable reads
// back:
//
//	tasktable <prog> tasks=<n> bufwords=<n> taustore=<g>
//	boundaries <pc,pc,...|->
//	task <id> entry=<pc> kind=<kind> reads=<n> words=<top|-|w,w,...>
func (t *TaskTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasktable %s tasks=%d bufwords=%d taustore=%s\n",
		t.Prog, len(t.Tasks), t.BufWords, strconv.FormatFloat(t.TauStore, 'g', -1, 64))
	b.WriteString("boundaries ")
	if len(t.Boundaries) == 0 {
		b.WriteString("-")
	}
	for i, pc := range t.Boundaries {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%d", pc)
	}
	b.WriteString("\n")
	for _, task := range t.Tasks {
		fmt.Fprintf(&b, "task %d entry=%d kind=%s reads=%d words=",
			task.ID, task.Entry, task.Kind, task.ReadWords)
		switch {
		case task.StoreTop:
			b.WriteString("top")
		case len(task.StoreWords) == 0:
			b.WriteString("-")
		default:
			for i, w := range task.StoreWords {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%#x", w)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ParseTaskTable reads a table rendered by String. Blank lines and
// lines starting with '#' are ignored; anything else malformed is an
// error, never a panic.
func ParseTaskTable(s string) (*TaskTable, error) {
	t := &TaskTable{}
	sawHeader, sawBounds := false, false
	wantTasks := 0
	for ln, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "tasktable":
			if sawHeader {
				return nil, fmt.Errorf("analyze: line %d: duplicate tasktable header", ln+1)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("analyze: line %d: tasktable header wants 5 fields, got %d", ln+1, len(fields))
			}
			t.Prog = fields[1]
			n, err := parseKeyInt(fields[2], "tasks")
			if err != nil {
				return nil, fmt.Errorf("analyze: line %d: %w", ln+1, err)
			}
			if n < 0 || n > 1<<20 {
				return nil, fmt.Errorf("analyze: line %d: task count %d out of range", ln+1, n)
			}
			wantTasks = n
			if t.BufWords, err = parseKeyInt(fields[3], "bufwords"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %w", ln+1, err)
			}
			ts, ok := strings.CutPrefix(fields[4], "taustore=")
			if !ok {
				return nil, fmt.Errorf("analyze: line %d: want taustore=, got %q", ln+1, fields[4])
			}
			if t.TauStore, err = strconv.ParseFloat(ts, 64); err != nil {
				return nil, fmt.Errorf("analyze: line %d: taustore: %w", ln+1, err)
			}
			sawHeader = true
		case "boundaries":
			if !sawHeader || sawBounds {
				return nil, fmt.Errorf("analyze: line %d: misplaced boundaries line", ln+1)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("analyze: line %d: boundaries wants 1 operand, got %d", ln+1, len(fields)-1)
			}
			if fields[1] != "-" {
				for _, f := range strings.Split(fields[1], ",") {
					pc, err := strconv.Atoi(f)
					if err != nil {
						return nil, fmt.Errorf("analyze: line %d: boundary %q: %w", ln+1, f, err)
					}
					t.Boundaries = append(t.Boundaries, pc)
				}
			}
			sawBounds = true
		case "task":
			if !sawHeader {
				return nil, fmt.Errorf("analyze: line %d: task before tasktable header", ln+1)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("analyze: line %d: task wants 6 fields, got %d", ln+1, len(fields))
			}
			var task Task
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("analyze: line %d: task id %q: %w", ln+1, fields[1], err)
			}
			task.ID = id
			if task.Entry, err = parseKeyInt(fields[2], "entry"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %w", ln+1, err)
			}
			kind, ok := strings.CutPrefix(fields[3], "kind=")
			if !ok {
				return nil, fmt.Errorf("analyze: line %d: want kind=, got %q", ln+1, fields[3])
			}
			task.Kind = kind
			if task.ReadWords, err = parseKeyInt(fields[4], "reads"); err != nil {
				return nil, fmt.Errorf("analyze: line %d: %w", ln+1, err)
			}
			words, ok := strings.CutPrefix(fields[5], "words=")
			if !ok {
				return nil, fmt.Errorf("analyze: line %d: want words=, got %q", ln+1, fields[5])
			}
			switch words {
			case "top":
				task.StoreTop = true
			case "-":
			default:
				for _, f := range strings.Split(words, ",") {
					w, err := strconv.ParseUint(f, 0, 32)
					if err != nil {
						return nil, fmt.Errorf("analyze: line %d: store word %q: %w", ln+1, f, err)
					}
					task.StoreWords = append(task.StoreWords, uint32(w))
				}
			}
			t.Tasks = append(t.Tasks, task)
		default:
			return nil, fmt.Errorf("analyze: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("analyze: missing tasktable header")
	}
	if len(t.Tasks) != wantTasks {
		return nil, fmt.Errorf("analyze: header promises %d tasks, found %d", wantTasks, len(t.Tasks))
	}
	return t, nil
}

func parseKeyInt(field, key string) (int, error) {
	v, ok := strings.CutPrefix(field, key+"=")
	if !ok {
		return 0, fmt.Errorf("want %s=, got %q", key, field)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", key, err)
	}
	return n, nil
}
