package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/mem"
)

// Severity ranks findings.
type Severity string

// Severities, strongest first.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warning"
	SevInfo  Severity = "info"
)

// Kind identifies a lint rule.
type Kind string

// Finding kinds.
const (
	// KindWARRegion is a write-after-read hazard inside one checkpoint
	// region: re-execution from the region's checkpoint site re-reads a
	// value the store already overwrote.
	KindWARRegion Kind = "war-region"
	// KindWARBoot is a region hazard reachable before any checkpoint
	// site has executed, so even the first replay is unsafe.
	KindWARBoot Kind = "war-before-first-checkpoint"
	// KindWARGlobal is a Clank-visible hazard: some read of the word
	// reaches the store with no intervening write, at any dynamic
	// checkpoint placement. Hardware handles it (at a checkpoint cost).
	KindWARGlobal Kind = "war-global"
	// KindDeadStore flags stores to words the program never loads.
	KindDeadStore Kind = "dead-store"
	// KindUnreachable flags blocks no path from entry reaches.
	KindUnreachable Kind = "unreachable"
	// KindLoopNoBoundary flags loops that store but contain no
	// checkpoint site: the inter-checkpoint store count is unbounded.
	KindLoopNoBoundary Kind = "loop-without-checkpoint"
	// KindUninitRead flags reads of registers that may still hold the
	// cold-boot corruption pattern.
	KindUninitRead Kind = "uninit-read"
	// KindCallConv flags R13–R15 calling-convention misuse.
	KindCallConv Kind = "calling-convention"
	// KindBadSys flags undefined SYS codes (the cpu faults on them).
	KindBadSys Kind = "invalid-sys"
	// KindBadTarget flags branch/jump targets outside the program.
	KindBadTarget Kind = "bad-branch-target"
	// KindOOB flags accesses that cannot land in device memory.
	KindOOB Kind = "out-of-bounds"
	// KindMisaligned flags word accesses at non-4-aligned addresses.
	KindMisaligned Kind = "misaligned"
)

// Finding is one diagnostic, anchored to an instruction.
type Finding struct {
	Kind  Kind     `json:"kind"`
	Sev   Severity `json:"severity"`
	PC    int      `json:"pc"`
	Where string   `json:"where"` // label-relative position
	Line  string   `json:"line"`  // listing line for PC
	Msg   string   `json:"msg"`
}

// LoopInfo summarises one cyclic SCC of the CFG.
type LoopInfo struct {
	HeadPC      int  `json:"head_pc"`
	Blocks      int  `json:"blocks"`
	Depth       int  `json:"depth"`  // loop-nest depth; 0 = outermost
	Stores      int  `json:"stores"` // store instructions in the loop body
	HasBoundary bool `json:"has_boundary"`
	// Simple is true when the SCC is a single cycle; then CyclesPerIter
	// prices one iteration with the cpu's cycle table and TauStore is
	// the static cycles-per-store Eq. 15 consumes.
	Simple        bool    `json:"simple"`
	CyclesPerIter uint64  `json:"cycles_per_iter,omitempty"`
	TauStore      float64 `json:"tau_store,omitempty"`
}

// RegionStats aggregates the region-scoped (software-checkpointing)
// pass.
type RegionStats struct {
	Hazards        int `json:"hazards"`          // stores with region WAR hazards
	PeakReadWords  int `json:"peak_read_words"`  // live read-first words; -1 unbounded
	PeakWriteWords int `json:"peak_write_words"` // distinct stored words; -1 unbounded
}

// ClankBound is the static tracking-buffer requirement: sizing Clank's
// read-first/write-first buffers at least this large provably
// eliminates buffer-overflow checkpoints, because between any two
// clears the buffers can hold at most the program's access footprint.
// -1 means unbounded (some access address could not be resolved).
type ClankBound struct {
	ReadFirstEntries  int `json:"read_first_entries"`
	WriteFirstEntries int `json:"write_first_entries"`
}

// Report is the full analysis result for one program.
type Report struct {
	Prog     string    `json:"prog"`
	Findings []Finding `json:"findings"`
	// Hazards is the global (Clank-sound) hazard set: every word a
	// dynamic Clank violation can hit is covered by some entry.
	Hazards []Hazard `json:"hazards,omitempty"`
	// RegionHazards is the region-scoped view (cleared at checkpoint
	// sites).
	RegionHazards []Hazard    `json:"region_hazards,omitempty"`
	Region        RegionStats `json:"region"`
	Clank         ClankBound  `json:"clank"`
	Loops         []LoopInfo  `json:"loops,omitempty"`

	prog   *asm.Program
	hazTop bool
	hazSet map[uint32]struct{}
	syms   symtab
}

// HazardWord reports whether the global analysis marks the word
// containing addr as WAR-hazardous. Dynamic Clank violations must
// satisfy this — the cross-validation invariant.
func (r *Report) HazardWord(addr uint32) bool {
	if r.hazTop {
		return true
	}
	_, ok := r.hazSet[addr&^3]
	return ok
}

// HazardWords returns the word-aligned addresses of the global hazard
// set, sorted ascending. It returns nil when the analysis widened to
// "every word is hazardous" (hazTop) — callers that need concrete
// targets (e.g. the adversarial fault campaign's frontier miner)
// should treat nil as "no usable hint", not "no hazards".
func (r *Report) HazardWords() []uint32 {
	if r.hazTop || len(r.hazSet) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(r.hazSet))
	for w := range r.hazSet {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TauStore returns the tightest static cycles-per-store over the
// program's simple store loops — the innermost store loop's period,
// which is the τ_store Eq. 15 wants. ok is false when no simple store
// loop exists.
func (r *Report) TauStore() (float64, bool) {
	best, found := 0.0, false
	for _, l := range r.Loops {
		if l.Simple && l.Stores > 0 && (!found || l.TauStore < best) {
			best, found = l.TauStore, true
		}
	}
	return best, found
}

// Eq15Result reports whether a Clank circular-buffer configuration
// satisfies Eq. 15 of the paper for a target backup period.
type Eq15Result struct {
	TauStore   float64 `json:"tau_store"` // static, from the innermost store loop
	ArrayN     int     `json:"array_n"`
	BufN       int     `json:"buf_n"`
	Writeback  int     `json:"writeback"`
	TauBTarget float64 `json:"tau_b_target"`
	TauB       float64 `json:"tau_b"` // predicted backup period for BufN
	NOpt       int     `json:"n_opt"` // buffer size Eq. 15 asks for
	Satisfied  bool    `json:"satisfied"`
}

// Eq15 checks a circular-buffer size against Eq. 15 using the static
// τ_store: (BufN − ArrayN + 1 + writeback)·τ_store = τ_B, satisfied
// when the predicted τ_B reaches the target.
func (r *Report) Eq15(arrayN, bufN, writeback int, tauBTarget float64) (Eq15Result, error) {
	ts, ok := r.TauStore()
	if !ok {
		return Eq15Result{}, fmt.Errorf("analyze: %s has no simple store loop to derive τ_store from", r.Prog)
	}
	plan, err := core.OptimalCircularBuffer(arrayN, ts, tauBTarget, writeback)
	if err != nil {
		return Eq15Result{}, err
	}
	res := Eq15Result{
		TauStore:   ts,
		ArrayN:     arrayN,
		BufN:       bufN,
		Writeback:  writeback,
		TauBTarget: tauBTarget,
		TauB:       core.StoresBetweenViolations(bufN, arrayN, writeback) * ts,
		NOpt:       plan.N,
	}
	res.Satisfied = res.TauB >= tauBTarget
	return res, nil
}

// Render writes the human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Prog)

	if len(r.Findings) == 0 {
		b.WriteString("no findings\n")
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%-7s %-28s %s: %s\n", f.Sev, f.Kind, f.Where, f.Msg)
		if f.Line != "" {
			fmt.Fprintf(&b, "        %s\n", f.Line)
		}
	}

	fmt.Fprintf(&b, "clank: read-first words %s, write-first words %s\n",
		countOrUnbounded(r.Clank.ReadFirstEntries), countOrUnbounded(r.Clank.WriteFirstEntries))
	fmt.Fprintf(&b, "region: %d hazard stores, peak read-first %s, peak stored %s\n",
		r.Region.Hazards, countOrUnbounded(r.Region.PeakReadWords), countOrUnbounded(r.Region.PeakWriteWords))
	if ts, ok := r.TauStore(); ok {
		fmt.Fprintf(&b, "tau_store: %g cycles/store (innermost simple store loop)\n", ts)
	}
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func countOrUnbounded(n int) string {
	if n < 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d", n)
}

// finding builds a Finding with listing context from the program.
func (r *Report) finding(kind Kind, sev Severity, pc int, format string, args ...any) Finding {
	f := Finding{Kind: kind, Sev: sev, PC: pc, Msg: fmt.Sprintf(format, args...)}
	if pc >= 0 && pc < len(r.prog.Code) {
		f.Where = r.prog.Where(uint32(pc))
		f.Line = r.prog.LineFor(uint32(pc))
	}
	return f
}

// symtab names data words after the program's symbols.
type symSpan struct {
	name      string
	base, end uint32 // [base, end)
}

type symtab struct{ spans []symSpan }

// buildSymtab infers symbol extents: each symbol runs to the next
// symbol in its region, or to the end of the region's image.
func buildSymtab(p *asm.Program) symtab {
	type nameAddr struct {
		name string
		addr uint32
	}
	var syms []nameAddr
	for n, a := range p.Symbols {
		syms = append(syms, nameAddr{n, a})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	regionEnd := func(a uint32) uint32 {
		if a >= mem.FRAMBase {
			return mem.FRAMBase + uint32(len(p.FRAMImage))
		}
		return mem.SRAMBase + uint32(len(p.SRAMImage))
	}
	var t symtab
	for i, s := range syms {
		end := regionEnd(s.addr)
		if i+1 < len(syms) && syms[i+1].addr < end && syms[i+1].addr >= s.addr {
			end = syms[i+1].addr
		}
		if end < s.addr {
			end = s.addr
		}
		t.spans = append(t.spans, symSpan{s.name, s.addr, end})
	}
	return t
}

// wordName renders a data word address relative to the covering symbol.
func (t symtab) wordName(w uint32) string {
	for _, s := range t.spans {
		if w >= s.base && w < s.end {
			if w == s.base {
				return fmt.Sprintf("%s(%#x)", s.name, w)
			}
			return fmt.Sprintf("%s+%d(%#x)", s.name, w-s.base, w)
		}
	}
	region := "sram"
	if w >= mem.FRAMBase {
		region = "fram"
	}
	return fmt.Sprintf("%s:%#x", region, w)
}

// describeWords renders a hazard's word list compactly.
func (t symtab) describeWords(h Hazard) string {
	if h.Top {
		return "any word"
	}
	const maxShown = 4
	parts := make([]string, 0, maxShown+1)
	for i, w := range h.Words {
		if i == maxShown {
			parts = append(parts, fmt.Sprintf("… %d more", len(h.Words)-maxShown))
			break
		}
		parts = append(parts, t.wordName(w))
	}
	return strings.Join(parts, ", ")
}
