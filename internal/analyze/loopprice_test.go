package analyze

import (
	"testing"

	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// TestLoopPricingConvention pins the back-edge convention the lint
// loop pricer uses: CyclesPerIter prices one *completed* iteration,
// i.e. every body instruction at its not-taken cost plus the loop
// terminator at its loop-continuing (taken, for a bottom-tested loop)
// cost. The final exit iteration is deliberately excluded — bounding
// it is the WCEC pass's job, which prices trips·CyclesPerIter plus
// the exit suffix separately.
func TestLoopPricingConvention(t *testing.T) {
	code := countedLoop(t)
	p := rawProg(t, "counted", code...)
	rep := mustAnalyze(t, p)
	var li *LoopInfo
	for i := range rep.Loops {
		if rep.Loops[i].HeadPC == 1 {
			li = &rep.Loops[i]
		}
	}
	if li == nil {
		t.Fatalf("no loop with head 1 in %+v", rep.Loops)
	}

	// Hand-sum against cpu.CyclesFor: SW + ADDI at fall-through cost,
	// BNE at taken cost (the back edge that continues the loop).
	want := cpu.CyclesFor(code[1], false) +
		cpu.CyclesFor(code[2], false) +
		cpu.CyclesFor(code[3], true)
	if li.CyclesPerIter != want {
		t.Fatalf("CyclesPerIter = %d, want %d (body at fall cost + terminator at taken cost)",
			li.CyclesPerIter, want)
	}

	// The WCEC pass must agree on the per-iteration figure: its bound
	// for the whole region is entry + trips·iter + exit suffix + halt,
	// with the same iteration price.
	tbl, err := WCEC(p, wcecOpts(1000))
	if err != nil {
		t.Fatalf("WCEC: %v", err)
	}
	r := tbl.Regions[0]
	entry := cpu.CyclesFor(code[0], false)
	exit := cpu.CyclesFor(code[1], false) + cpu.CyclesFor(code[2], false) +
		cpu.CyclesFor(code[3], false) // exit iteration ends on the fall edge
	haltC := cpu.CyclesFor(code[4], false)
	const trips = 10
	if wantWC := entry + trips*li.CyclesPerIter + exit + haltC; r.WCCycles != wantWC {
		t.Fatalf("WCEC WC = %d, want %d = entry %d + %d·%d + exit %d + halt %d",
			r.WCCycles, wantWC, entry, trips, li.CyclesPerIter, exit, haltC)
	}
}

// TestSimpleCycleCostMatchesCyclesFor checks the extracted pricing
// helper on a multi-block *simple* cycle (exactly one in-SCC
// successor per block, the precondition classifyLoop prices under):
// the jump-terminated block is priced at its single successor edge,
// the latch at the taken back edge, and each block's price is the
// instruction-by-instruction sum of cpu.CyclesFor under that edge
// kind.
func TestSimpleCycleCostMatchesCyclesFor(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R0, Imm: 4},  // 0
		{Op: isa.LW, Rd: isa.R3, Rs1: isa.R0, Imm: 0},    // 1 header
		{Op: isa.JAL, Rd: isa.R0, Imm: 3},                // 2 block break
		{Op: isa.SW, Rd: isa.R3, Rs1: isa.R0, Imm: 0},    // 3
		{Op: isa.ADDI, Rd: isa.R2, Rs1: isa.R2, Imm: -1}, // 4
		{Op: isa.BNE, Rd: isa.R2, Rs1: isa.R0, Imm: -4},  // 5 -> 1
		halt(), // 6
	}
	p := rawProg(t, "twoblock", code...)
	rep := mustAnalyze(t, p)
	var li *LoopInfo
	for i := range rep.Loops {
		if rep.Loops[i].HeadPC == 1 {
			li = &rep.Loops[i]
		}
	}
	if li == nil {
		t.Fatalf("no loop with head 1 in %+v", rep.Loops)
	}
	if !li.Simple {
		t.Fatalf("two-block jump loop should be simple: %+v", li)
	}
	// Header block: LW + JAL (jump cost is edge-kind independent);
	// latch block: SW + ADDI + BNE at the taken back edge.
	want := cpu.CyclesFor(code[1], false) + cpu.CyclesFor(code[2], false) +
		cpu.CyclesFor(code[3], false) + cpu.CyclesFor(code[4], false) +
		cpu.CyclesFor(code[5], true)
	if li.CyclesPerIter != want {
		t.Fatalf("CyclesPerIter = %d, want %d", li.CyclesPerIter, want)
	}
}
