// Package analyze is the static analysis companion to the simulator:
// it builds a control-flow graph over an assembled EH32 program, runs
// an interval dataflow to resolve load/store addresses, and derives the
// facts an intermittent-computing port needs before a cycle runs —
// write-after-read idempotency hazards (both Clank-sound and per
// checkpoint region), tracking-buffer size bounds, the static τ_store
// Eq. 15 consumes, and a set of lints (uninitialised registers after
// cold boot, dead stores, unreachable code, checkpoint-free store
// loops, calling-convention misuse, guaranteed runtime faults).
//
// The central soundness contract, exercised by the test suite against
// the dynamic fault auditor: every word a strategy.Clank run reports as
// an idempotency violation satisfies Report.HazardWord, at any buffer
// size, watchdog setting or power schedule.
package analyze

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// DefaultBoundaries are the SYS codes treated as checkpoint sites for
// the region-scoped analyses: explicit checkpoints (Mementos) and task
// ends (DINO/Chain commit points).
func DefaultBoundaries() []isa.Sys { return []isa.Sys{isa.SysChkpt, isa.SysTaskEnd} }

// Options configures an analysis run. The zero value picks the device
// defaults.
type Options struct {
	// Boundaries are the SYS codes that delimit checkpoint regions;
	// nil means DefaultBoundaries.
	Boundaries []isa.Sys
	// SRAMSize and FRAMSize give the device memory geometry in bytes;
	// zero means the device defaults (8 KiB SRAM, 256 KiB FRAM).
	SRAMSize int
	FRAMSize int
}

// Device memory defaults, matching device.New.
const (
	defaultSRAMSize = 8 << 10
	defaultFRAMSize = 256 << 10
)

// Analyze runs the full static analysis over prog.
func Analyze(prog *asm.Program, o Options) (*Report, error) {
	if prog == nil || len(prog.Code) == 0 {
		return nil, fmt.Errorf("analyze: empty program")
	}
	bounds := o.Boundaries
	if bounds == nil {
		bounds = DefaultBoundaries()
	}
	boundarySet := make(map[isa.Sys]bool, len(bounds))
	for _, s := range bounds {
		boundarySet[s] = true
	}
	lay := memLayout{sramSize: uint32(defaultSRAMSize), framSize: uint32(defaultFRAMSize)}
	if o.SRAMSize > 0 {
		lay.sramSize = uint32(o.SRAMSize)
	}
	if o.FRAMSize > 0 {
		lay.framSize = uint32(o.FRAMSize)
	}

	g := buildCFG(prog.Code)
	fr := runFlow(g)

	// Resolve every reachable memory access once.
	acc := make([]*accessInfo, len(prog.Code))
	for id, b := range g.blocks {
		if !fr.reach[id] {
			continue
		}
		for pc := b.Start; pc < b.End; pc++ {
			in := prog.Code[pc]
			if in.Op.IsLoad() || in.Op.IsStore() {
				acc[pc] = resolveAccess(pc, in, fr.stateAt[pc], lay)
			}
		}
	}

	r := &Report{
		Prog: prog.Name,
		prog: prog,
		syms: buildSymtab(prog),
	}

	// Global (Clank-sound) pass: no clearing at programmer boundaries,
	// because Clank checkpoints at dynamically chosen points.
	global := runWAR(g, acc, nil, nil, false, lay)
	r.Hazards = global.hazards

	// Region-scoped pass for software checkpointing runtimes.
	region := runWAR(g, acc, boundarySet, nil, true, lay)
	r.RegionHazards = region.hazards
	r.Region = RegionStats{
		Hazards:        len(region.hazards),
		PeakReadWords:  region.peakRead,
		PeakWriteWords: region.peakWrite,
	}

	readFoot, storeFoot := footprints(g, fr, acc, lay)
	r.Clank = ClankBound{
		ReadFirstEntries:  readFoot.size(),
		WriteFirstEntries: storeFoot.size(),
	}

	// Membership index for HazardWord.
	r.hazSet = make(map[uint32]struct{})
	for _, h := range r.Hazards {
		if h.Top {
			r.hazTop = true
			break
		}
		for _, w := range h.Words {
			r.hazSet[w] = struct{}{}
		}
	}

	r.Loops = analyzeLoops(g, boundarySet)
	r.lintPass(g, fr, acc, readFoot, noBoundaryBefore(g, boundarySet))
	return r, nil
}
