package analyze

import (
	"reflect"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
	"ehmodel/internal/workload"
)

// taskProg builds a named workload in the given segment.
func taskProg(t *testing.T, name string, seg asm.Segment) *asm.Program {
	t.Helper()
	w, ok := workload.Get(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	prog, err := w.Build(workload.Options{Seg: seg})
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return prog
}

// TestTasksCutAllHazards is the decomposition pass's soundness claim:
// with every WAR-cut boundary applied, the region-scoped WAR pass finds
// no remaining hazard — every task is idempotent.
func TestTasksCutAllHazards(t *testing.T) {
	for _, name := range []string{"counter", "ds", "crc", "qsort"} {
		for _, seg := range []asm.Segment{asm.SRAM, asm.FRAM} {
			prog := taskProg(t, name, seg)
			tt, err := Tasks(prog, Options{})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, seg, err)
			}
			if len(tt.Tasks) == 0 {
				t.Fatalf("%s/%v: no tasks", name, seg)
			}

			g := buildCFG(prog.Code)
			fr := runFlow(g)
			lay := memLayout{sramSize: defaultSRAMSize, framSize: defaultFRAMSize}
			acc := make([]*accessInfo, len(prog.Code))
			for id, b := range g.blocks {
				if !fr.reach[id] {
					continue
				}
				for pc := b.Start; pc < b.End; pc++ {
					in := prog.Code[pc]
					if in.Op.IsLoad() || in.Op.IsStore() {
						acc[pc] = resolveAccess(pc, in, fr.stateAt[pc], lay)
					}
				}
			}
			pcBounds := make(map[int]bool, len(tt.Boundaries))
			for _, pc := range tt.Boundaries {
				pcBounds[pc] = true
			}
			res := runWAR(g, acc, map[isa.Sys]bool{isa.SysTaskEnd: true}, pcBounds, false, lay)
			if len(res.hazards) != 0 {
				t.Errorf("%s/%v: %d WAR hazards survive the task boundaries (first at pc %d)",
					name, seg, len(res.hazards), res.hazards[0].PC)
			}

			if tt.BufWords >= 0 {
				for _, task := range tt.Tasks {
					if task.StoreTop {
						t.Errorf("%s/%v: task %d unbounded but BufWords=%d", name, seg, task.ID, tt.BufWords)
					}
					if len(task.StoreWords) > tt.BufWords {
						t.Errorf("%s/%v: task %d write set %d exceeds BufWords %d",
							name, seg, task.ID, len(task.StoreWords), tt.BufWords)
					}
				}
			}
		}
	}
}

// TestTaskTableRoundTrip pins the serialization: String → ParseTaskTable
// is the identity on every generated table.
func TestTaskTableRoundTrip(t *testing.T) {
	for _, name := range []string{"counter", "ds", "crc", "qsort"} {
		prog := taskProg(t, name, asm.SRAM)
		tt, err := Tasks(prog, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ParseTaskTable(tt.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", name, err, tt.String())
		}
		if !reflect.DeepEqual(back, tt) {
			t.Fatalf("%s: round trip diverged:\n got %+v\nwant %+v", name, back, tt)
		}
	}
}

// TestParseTaskTableRejects pins error (not panic) behaviour on the
// malformed shapes the fuzzer starts from.
func TestParseTaskTableRejects(t *testing.T) {
	bad := []string{
		"",
		"task 0 entry=0 kind=entry reads=0 words=-",
		"tasktable p tasks=2 bufwords=0 taustore=0\nboundaries -\n",
		"tasktable p tasks=x bufwords=0 taustore=0",
		"tasktable p tasks=0 bufwords=0 taustore=zz",
		"tasktable p tasks=0 bufwords=0 taustore=0\nboundaries 1,q\n",
		"tasktable p tasks=1 bufwords=0 taustore=0\nboundaries -\ntask 0 entry=0 kind=entry reads=0 words=0xzz",
		"tasktable p tasks=9999999999 bufwords=0 taustore=0",
		"garbage line",
	}
	for _, s := range bad {
		if _, err := ParseTaskTable(s); err == nil {
			t.Errorf("ParseTaskTable(%q) accepted malformed input", s)
		}
	}
}

// FuzzParseTaskTable proves the parser never panics and that any input
// it accepts survives a render→reparse cycle.
func FuzzParseTaskTable(f *testing.F) {
	for _, name := range []string{"counter", "crc"} {
		w, ok := workload.Get(name)
		if !ok {
			f.Fatalf("workload %s missing", name)
		}
		prog, err := w.Build(workload.Options{})
		if err != nil {
			f.Fatal(err)
		}
		tt, err := Tasks(prog, Options{})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tt.String())
	}
	f.Add("tasktable p tasks=1 bufwords=-1 taustore=1e9\nboundaries 3,5\ntask 0 entry=0 kind=entry reads=-1 words=top\n")
	f.Add("tasktable p tasks=0 bufwords=0 taustore=NaN\nboundaries -\n")
	f.Add("tasktable tasks=1 tasks=1 bufwords=0 taustore=0\nboundaries -\ntask 0 entry=-4 kind=war-store reads=0 words=0xffffffff\n")
	f.Add("# comment\n\n tasktable p tasks=0 bufwords=0 taustore=0\nboundaries -")
	f.Fuzz(func(t *testing.T, s string) {
		tt, err := ParseTaskTable(s)
		if err != nil {
			return
		}
		back, err := ParseTaskTable(tt.String())
		if err != nil {
			t.Fatalf("accepted table failed reparse: %v\nrendered:\n%s", err, tt.String())
		}
		if len(back.Tasks) != len(tt.Tasks) {
			t.Fatalf("reparse changed task count: %d → %d", len(tt.Tasks), len(back.Tasks))
		}
	})
}
