package experiments

import (
	"fmt"
	"math"

	"ehmodel/internal/core"
)

// figParams is the illustrative configuration of Figs. 2–4: ε is 1% of
// E, unit backup cost and architectural state, α_B = 0.1, no restores,
// no charging.
func figParams() core.Params {
	return core.DefaultParams()
}

// tauBAxis is the τ_B sweep shared by the analytic figures.
func tauBAxis() []float64 { return core.LogSpace(0.1, 200, 120) }

// Fig2 reproduces "progress p for a multi-backup system with varying
// τ_B and backup cost Ω_B": one curve per Ω_B ∈ {0.01, 0.1, 1, 10}·ε,
// each annotated with its closed-form optimum.
func Fig2() *Figure {
	f := &Figure{
		ID:     "fig2",
		Title:  "Multi-backup progress vs time between backups (Fig. 2)",
		XLabel: "τ_B (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	for _, omega := range []float64{0.01, 0.1, 1, 10} {
		p := figParams()
		p.OmegaB = omega
		s := Series{Label: fmt.Sprintf("Ω_B=%g", omega)}
		for _, pt := range p.SweepTauB(tauBAxis(), core.DeadAverage) {
			s.Points = append(s.Points, Point{X: pt.X, Y: pt.P})
		}
		f.Series = append(f.Series, s)
		opt := p.TauBOpt()
		f.AddNote("Ω_B=%g: τ_B,opt = %.2f cycles (p = %.4f)", omega, opt,
			p.WithTauB(opt).Progress())
	}
	return f
}

// Fig3 repeats Fig. 2 with no architectural state (A_B = 0): progress
// is monotonically non-increasing, so backing up as often as possible
// wins.
func Fig3() *Figure {
	f := &Figure{
		ID:     "fig3",
		Title:  "Multi-backup progress with A_B = 0 (Fig. 3)",
		XLabel: "τ_B (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	for _, omega := range []float64{0.01, 0.1, 1, 10} {
		p := figParams()
		p.OmegaB = omega
		p.AB = 0
		s := Series{Label: fmt.Sprintf("Ω_B=%g", omega)}
		for _, pt := range p.SweepTauB(tauBAxis(), core.DeadAverage) {
			s.Points = append(s.Points, Point{X: pt.X, Y: pt.P})
		}
		f.Series = append(f.Series, s)
	}
	f.AddNote("no interior optimum: p is monotone non-increasing in τ_B")
	return f
}

// Fig4 shows progress under best-case (τ_D = 0), average (τ_B/2) and
// worst-case (τ_B) dead cycles, plus both closed-form optima.
func Fig4() *Figure {
	f := &Figure{
		ID:     "fig4",
		Title:  "Dead-cycle variability bounds (Fig. 4)",
		XLabel: "τ_B (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	p := figParams()
	for _, d := range []core.DeadModel{core.DeadBest, core.DeadAverage, core.DeadWorst} {
		s := Series{Label: "τ_D " + d.String()}
		for _, pt := range p.SweepTauB(tauBAxis(), d) {
			s.Points = append(s.Points, Point{X: pt.X, Y: pt.P})
		}
		f.Series = append(f.Series, s)
	}
	f.AddNote("τ_B,opt (average) = %.2f", p.TauBOpt())
	f.AddNote("τ_B,opt (worst case) = %.2f — always below the average-case optimum", p.TauBOptWorstCase())
	return f
}

// Fig11Config parametrizes the reduced-bit-precision figure. Ratios are
// the Ω_B·A_B/(Ω_B·α_B+ε) values of the plotted curves; the paper
// controls the ratio via α_B with all other parameters fixed from the
// susan-on-Clank characterization.
type Fig11Config struct {
	// Base carries E, ε, Ω_B and A_B (typically extracted from a Clank
	// run of susan).
	Base core.Params
	// Ratios to plot; zero value uses {10, 25, 50, 100}. A ratio is
	// reachable only up to Ω_B·A_B/ε of the base parameters.
	Ratios []float64
}

// Fig11 plots the magnitude of ∂p/∂α_B — the progress gained per unit
// of application-state reduction — against τ_B, marking each curve's
// τ_B,bit sweet spot (Eq. 16).
func Fig11(cfg Fig11Config) *Figure {
	if cfg.Ratios == nil {
		cfg.Ratios = []float64{10, 25, 50, 100}
	}
	f := &Figure{
		ID:     "fig11",
		Title:  "Benefit of reduced bit-precision vs τ_B (Fig. 11)",
		XLabel: "τ_B (cycles)",
		YLabel: "|∂p/∂α_B|",
		XLog:   true,
	}
	axis := core.LogSpace(1, 4*cfg.Base.E/cfg.Base.Epsilon, 120)
	for _, ratio := range cfg.Ratios {
		// choose α_B so that Ω_B·A_B/(Ω_B·α_B+ε) equals the ratio
		p := cfg.Base
		alpha := alphaForRatio(p, ratio)
		if alpha < 0 || math.IsNaN(alpha) {
			continue // ratio unreachable for these base parameters
		}
		p.AlphaB = alpha
		s := Series{Label: fmt.Sprintf("ratio=%g", ratio)}
		for _, tb := range axis {
			s.Points = append(s.Points, Point{X: tb, Y: math.Abs(p.WithTauB(tb).DPDAlphaB())})
		}
		f.Series = append(f.Series, s)
		bit := p.TauBBit()
		f.AddNote("ratio=%g: τ_B,bit = %.1f cycles, |∂p/∂α_B| = %.3g, Δp for 1-bit (12.5%%) α_B cut ≈ %.3g",
			ratio, bit,
			math.Abs(p.WithTauB(bit).DPDAlphaB()),
			deltaPForBitCut(p.WithTauB(bit)))
	}
	return f
}

// alphaForRatio solves Ω_B·A_B/(Ω_B·α_B + ε) = ratio for α_B.
func alphaForRatio(p core.Params, ratio float64) float64 {
	return (p.OmegaB*p.AB/ratio - p.Epsilon) / p.OmegaB
}

// deltaPForBitCut estimates the progress gained by dropping one bit of
// precision (an eighth of each byte) from application state.
func deltaPForBitCut(p core.Params) float64 {
	reduced := p
	reduced.AlphaB = p.AlphaB * 7 / 8
	return reduced.Progress() - p.Progress()
}

// DefaultFig11Base returns the illustrative susan-like base when no
// measured characterization is available: Clank-ish arch state and the
// exploratory E/ε ratio of the paper's figures.
func DefaultFig11Base() core.Params {
	p := core.DefaultParams()
	p.E = 10000
	p.AB = 80
	p.OmegaB = 1.25 // Ω_B·A_B = 100·ε: ratios up to 100 are reachable
	return p
}
