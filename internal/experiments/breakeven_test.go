package experiments

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
)

// TestBreakEvenStudy: the empirical one-backup-per-period crossover
// must straddle Eq. 11's break-even estimate — the paper's "more
// restore invocations than backup invocations" regime starts where the
// model says it does.
func TestBreakEvenStudy(t *testing.T) {
	fig, pts, tauBE, err := BreakEvenStudy(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tauBE <= 0 {
		t.Fatal("no Eq. 11 estimate")
	}
	// backups-per-period must fall monotonically with τ_B
	for i := 1; i < len(pts); i++ {
		if pts[i].BackupsPerPeriod > pts[i-1].BackupsPerPeriod+0.05 {
			t.Errorf("backups/period rose at τ_B=%g", pts[i].TauB)
		}
	}
	// find the empirical crossover from the notes' source data
	var cross float64
	for i := 1; i < len(pts); i++ {
		if pts[i-1].BackupsPerPeriod >= 1 && pts[i].BackupsPerPeriod < 1 {
			x0, x1 := pts[i-1].TauB, pts[i].TauB
			y0, y1 := pts[i-1].BackupsPerPeriod, pts[i].BackupsPerPeriod
			cross = x0 + (1-y0)/(y1-y0)*(x1-x0)
		}
	}
	if cross == 0 {
		t.Fatal("no crossover found")
	}
	if ratio := cross / tauBE; ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("empirical crossover %.0f vs Eq. 11 %.0f (ratio %.2f)", cross, tauBE, ratio)
	}
	if len(fig.Notes) < 3 {
		t.Error("missing notes")
	}
}
