package experiments

import "testing"

func TestTable2Default(t *testing.T) {
	rows, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want the six Table II benchmarks", len(rows))
	}
	for _, r := range rows {
		if r.Instructions == 0 || r.Cycles == 0 {
			t.Errorf("%s: empty profile", r.Name)
		}
		if r.LoadFrac < 0 || r.LoadFrac > 1 || r.StoreFrac < 0 || r.StoreFrac > 1 {
			t.Errorf("%s: fractions out of range", r.Name)
		}
		if r.Desc == "" {
			t.Errorf("%s: missing description", r.Name)
		}
	}
}

func TestTable2Custom(t *testing.T) {
	rows, err := Table2([]string{"lzfx", "sha"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "lzfx" {
		t.Fatalf("rows: %+v", rows)
	}
	// lzfx stores far more densely than sha (the Fig. 8 driver)
	if rows[0].TauStore >= rows[1].TauStore {
		t.Errorf("lzfx τ_store (%g) should undercut sha's (%g)",
			rows[0].TauStore, rows[1].TauStore)
	}
	if _, err := Table2([]string{"nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
