package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// Ablations probe the design choices DESIGN.md calls out: Clank's
// tracking-buffer capacity and watchdog period, Hibernus's threshold
// margin, and Mementos's checkpoint-site gating. Each returns a Figure
// so ehfigs and the bench suite can regenerate them. Every sweep builds
// a plan and runs through the memoizing executor: failed points are
// dropped from the figure with a note, survivors still render, and the
// merged order is the input order so output is identical at any worker
// count and any cache temperature.

// ablationCell wraps one ablation run as a sweep cell with a bounded
// period budget. requireComplete preserves the two historical flavours:
// runs that must finish, and corner runs (razor-thin Hibernus margins)
// where making no forward progress is the measurement.
func ablationCell(label string, pm energy.PowerModel, periodCycles float64, maxPeriods int, requireComplete bool, build func() (*asm.Program, device.Strategy, error)) sweep.Cell {
	var progName, sysName string
	return sweep.Cell{
		Label: label,
		Build: func(context.Context) (device.Config, device.Strategy, error) {
			prog, s, err := build()
			if err != nil {
				return device.Config{}, nil, err
			}
			progName, sysName = prog.Name, s.Name()
			return fixedConfig(prog, pm, periodCycles, maxPeriods), s, nil
		},
		Verify: func(res *device.Result) error {
			if requireComplete && !res.Completed {
				return fmt.Errorf("experiments: ablation run of %s/%s incomplete", sysName, progName)
			}
			return nil
		},
	}
}

// AblationClankBuffers sweeps the read-first/write-first buffer capacity
// (the paper's configuration uses 8+8) on a load-heavy and a
// violation-heavy kernel. Larger buffers eliminate overflow-forced
// checkpoints, stretching τ_B until violations or the watchdog dominate.
func AblationClankBuffers(ctx context.Context, run runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-clank-buffers",
		Title:  "Clank tracking-buffer capacity ablation",
		XLabel: "buffer entries (each of read-first/write-first)",
		YLabel: "mean τ_B (cycles)",
		XLog:   true,
	}
	pm := energy.CortexM0Power()
	benches := []string{"susan", "lzfx"}
	capacities := []int{1, 2, 4, 8, 16, 32, 64}
	progs := make([]*asm.Program, len(benches))
	for bi, bench := range benches {
		w, ok := workload.Get(bench)
		if !ok {
			return nil, fmt.Errorf("experiments: workload %q missing", bench)
		}
		prog, err := w.Build(workload.Options{Seg: asm.FRAM, Scale: 2})
		if err != nil {
			return nil, err
		}
		progs[bi] = prog
	}
	plan := sweep.NewPlan("ablation-clank-buffers")
	for bi := range benches {
		g := plan.Group(benches[bi])
		for ci := range capacities {
			prog, entries := progs[bi], capacities[ci]
			g.Add(ablationCell(
				fmt.Sprintf("clank-buffers %s entries=%d", benches[bi], entries),
				pm, 30000, 100000, true,
				func() (*asm.Program, device.Strategy, error) {
					cl := strategy.NewClank()
					cl.ReadFirstEntries = entries
					cl.WriteFirstEntries = entries
					return prog, cl, nil
				}))
		}
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()

	for bi, bench := range benches {
		tau := Series{Label: bench + " τ_B"}
		for ci, entries := range capacities {
			i := bi*len(capacities) + ci
			if failed[i] {
				continue
			}
			tau.Points = append(tau.Points, Point{X: float64(entries), Y: all[i].Result.MeanTauB()})
		}
		fig.Series = append(fig.Series, tau)
		if len(tau.Points) > 0 {
			first, last := tau.Points[0], tau.Points[len(tau.Points)-1]
			fig.AddNote("%s: τ_B %.0f → %.0f cycles from %.0f to %.0f entries (×%.1f)",
				bench, first.Y, last.Y, first.X, last.X, last.Y/first.Y)
		}
	}
	fig.AddNote("lzfx flattens early: per-iteration WAR violations dominate regardless of capacity")
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(benches)*len(capacities)))
		return fig, errs
	}
	return fig, nil
}

// AblationClankWatchdog sweeps the watchdog period on an ALU-dominated
// kernel where the watchdog is the only checkpoint source, comparing
// measured progress against the EH model across the sweep.
func AblationClankWatchdog(ctx context.Context, run runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-clank-watchdog",
		Title:  "Clank watchdog-period ablation (sha kernel)",
		XLabel: "watchdog period (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	pm := energy.CortexM0Power()
	w, _ := workload.Get("sha")
	// scale ≫ period so every configuration spans many power failures —
	// otherwise dead cycles never occur and rare backups trivially win
	prog, err := w.Build(workload.Options{Seg: asm.FRAM, Scale: 24})
	if err != nil {
		return nil, err
	}
	watchdogs := []uint64{500, 1000, 2000, 4000, 8000, 16000}
	plan := sweep.NewPlan("ablation-clank-watchdog")
	for _, wd := range watchdogs {
		wd := wd
		plan.Add(ablationCell(
			fmt.Sprintf("clank-watchdog sha wd=%d cycles", wd),
			pm, 20000, 100000, true,
			func() (*asm.Program, device.Strategy, error) {
				cl := strategy.NewClank()
				cl.WatchdogCycles = wd
				cl.ReadFirstEntries = 4096 // watchdog-only checkpointing
				cl.WriteFirstEntries = 4096
				return prog, cl, nil
			}))
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()

	meas := Series{Label: "measured"}
	for i, wd := range watchdogs {
		if failed[i] {
			continue
		}
		meas.Points = append(meas.Points, Point{X: float64(wd), Y: all[i].Result.MeasuredProgress()})
	}
	fig.Series = append(fig.Series, meas)
	if len(meas.Points) > 0 {
		best := meas.Points[0]
		for _, p := range meas.Points {
			if p.Y > best.Y {
				best = p
			}
		}
		fig.AddNote("measured best watchdog ≈ %.0f cycles (p = %.4f)", best.X, best.Y)
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(watchdogs)))
		return fig, errs
	}
	return fig, nil
}

// AblationHibernusMargin sweeps the voltage-threshold margin: tight
// margins maximize pre-hibernation work but risk dying mid-backup
// (§IV-B's inconsistent-state hazard, visible as periods whose backup
// failed), while loose margins waste energy idling.
func AblationHibernusMargin(ctx context.Context, run runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-hibernus-margin",
		Title:  "Hibernus threshold-margin ablation (crc benchmark)",
		XLabel: "margin (× backup cost)",
		YLabel: "progress p / failed-backup fraction",
	}
	pm := energy.MSP430Power()
	w, _ := workload.Get("crc")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 4})
	if err != nil {
		return nil, err
	}
	margins := []float64{1.02, 1.1, 1.5, 2, 3, 5, 8}
	plan := sweep.NewPlan("ablation-hibernus-margin")
	for _, margin := range margins {
		margin := margin
		// tight margins may never complete — dying mid-backup every
		// period is §IV-B's hazard and exactly what this ablation shows
		plan.Add(ablationCell(
			fmt.Sprintf("hibernus-margin crc margin=%g", margin),
			pm, 15000, 500, false,
			func() (*asm.Program, device.Strategy, error) {
				h := strategy.NewHibernus()
				h.Margin = margin
				return prog, h, nil
			}))
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()

	prg := Series{Label: "measured p"}
	failedS := Series{Label: "failed-backup fraction"}
	for i, margin := range margins {
		if failed[i] {
			continue
		}
		res := all[i].Result
		fails := 0
		for _, p := range res.Periods {
			if p.BackupCycles > 0 && p.Backups == 0 {
				fails++
			}
		}
		y := res.MeasuredProgress()
		if !res.Completed && res.Backups() == 0 {
			y = 0 // perpetual restart: no committed work at all
		}
		prg.Points = append(prg.Points, Point{X: margin, Y: y})
		failedS.Points = append(failedS.Points, Point{X: margin, Y: float64(fails) / float64(len(res.Periods))})
	}
	fig.Series = append(fig.Series, prg, failedS)
	fig.AddNote("tight margins die mid-backup (§IV-B's inconsistency hazard); loose margins idle energy away")
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(margins)))
		return fig, errs
	}
	return fig, nil
}

// AblationMementosGap sweeps the minimum spacing between checkpoint
// commits once below threshold: no gating thrashes on every site; very
// wide gating risks dying between checkpoints.
func AblationMementosGap(ctx context.Context, run runner.Options) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-mementos-gap",
		Title:  "Mementos checkpoint-gating ablation (ds benchmark)",
		XLabel: "minimum gap between checkpoints (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	pm := energy.MSP430Power()
	w, _ := workload.Get("ds")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 4})
	if err != nil {
		return nil, err
	}
	gaps := []uint64{32, 128, 512, 2048, 8192}
	plan := sweep.NewPlan("ablation-mementos-gap")
	for _, gap := range gaps {
		gap := gap
		plan.Add(ablationCell(
			fmt.Sprintf("mementos-gap ds gap=%d cycles", gap),
			pm, 15000, 100000, true,
			func() (*asm.Program, device.Strategy, error) {
				m := strategy.NewMementos()
				m.MinGapCycles = gap
				return prog, m, nil
			}))
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()

	s := Series{Label: "measured p"}
	for i, gap := range gaps {
		if failed[i] {
			continue
		}
		s.Points = append(s.Points, Point{X: float64(gap), Y: all[i].Result.MeasuredProgress()})
	}
	fig.Series = append(fig.Series, s)
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(gaps)))
		return fig, errs
	}
	return fig, nil
}

// VariabilityStudy measures the per-period progress distribution of a
// fixed-interval system — the empirical counterpart of Fig. 4's
// variability analysis. A bench supply would make every period
// identical (the simulator is deterministic), so the study drives the
// device from a multi-peak harvested trace: in-period charging varies
// with trace phase, shifting where each period dies relative to the
// backup schedule, exactly the supply-side non-determinism §IV-A2
// describes. It is a single cell, not a sweep, but it still runs
// through the memoizing executor so repeated invocations recall the
// stored result.
func VariabilityStudy(ctx context.Context, tauB uint64, periods int, run runner.Options) (*Figure, error) {
	if periods <= 0 {
		periods = 40
	}
	pm := energy.MSP430Power()
	cells := []sweep.Cell{{
		Label: fmt.Sprintf("variability τ_B=%d periods=%d", tauB, periods),
		Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
			w, _ := workload.Get("counter")
			prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 400})
			if err != nil {
				return device.Config{}, nil, err
			}
			tr := trace.Generate(trace.MultiPeak, 10, 1e-3, 99)
			h, err := energy.NewHarvester(tr, 40000, 0.7) // peak power below core draw
			if err != nil {
				return device.Config{}, nil, err
			}
			e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
			capC, vmax, von, voff := device.FixedSupplyConfig(e)
			return device.Config{
				Prog: prog, Power: pm, Harvester: h,
				CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
				MaxPeriods: periods, MaxCycles: 1 << 62,
			}, strategy.NewTimer(tauB, 0.1), nil
		},
	}}
	all, errs := sweep.Run(ctx, cells, run)
	if len(errs) > 0 {
		return nil, errs[0].Err
	}
	res := all[0].Result

	fig := &Figure{
		ID:     "variability",
		Title:  fmt.Sprintf("Per-period progress distribution at τ_B=%d (Fig. 4 empirics)", tauB),
		XLabel: "active period",
		YLabel: "progress p",
	}
	samples := Series{Label: "per-period p"}
	for i, p := range res.Periods {
		if res.Completed && i == len(res.Periods)-1 {
			continue
		}
		supply := p.SupplyE + p.HarvestedE
		samples.Points = append(samples.Points, Point{X: float64(i), Y: p.ProgressE / supply})
	}
	fig.Series = append(fig.Series, samples)
	fig.AddNote("periods observed: %d", len(samples.Points))
	return fig, nil
}
