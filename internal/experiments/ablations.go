package experiments

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/strategy"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// Ablations probe the design choices DESIGN.md calls out: Clank's
// tracking-buffer capacity and watchdog period, Hibernus's threshold
// margin, and Mementos's checkpoint-site gating. Each returns a Figure
// so ehfigs and the bench suite can regenerate them.

// runAblationMaybe executes a prepared device with a bounded period
// budget and returns the result whether or not the program completed —
// some ablation corners (e.g. razor-thin Hibernus margins) legitimately
// make no forward progress, which is the measurement.
func runAblationMaybe(prog *asm.Program, s device.Strategy, pm energy.PowerModel, periodCycles float64, maxPeriods int) (*device.Result, error) {
	e := periodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	d, err := device.New(device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: maxPeriods, MaxCycles: 1 << 62,
	}, s)
	if err != nil {
		return nil, err
	}
	return d.Run()
}

// runAblation is runAblationMaybe with completion required.
func runAblation(prog *asm.Program, s device.Strategy, pm energy.PowerModel, periodCycles float64) (*device.Result, error) {
	res, err := runAblationMaybe(prog, s, pm, periodCycles, 100000)
	if err != nil {
		return nil, err
	}
	if !res.Completed {
		return nil, fmt.Errorf("experiments: ablation run of %s/%s incomplete", s.Name(), prog.Name)
	}
	return res, nil
}

// AblationClankBuffers sweeps the read-first/write-first buffer capacity
// (the paper's configuration uses 8+8) on a load-heavy and a
// violation-heavy kernel. Larger buffers eliminate overflow-forced
// checkpoints, stretching τ_B until violations or the watchdog dominate.
func AblationClankBuffers() (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-clank-buffers",
		Title:  "Clank tracking-buffer capacity ablation",
		XLabel: "buffer entries (each of read-first/write-first)",
		YLabel: "mean τ_B (cycles)",
		XLog:   true,
	}
	pm := energy.CortexM0Power()
	for _, bench := range []string{"susan", "lzfx"} {
		w, ok := workload.Get(bench)
		if !ok {
			return nil, fmt.Errorf("experiments: workload %q missing", bench)
		}
		prog, err := w.Build(workload.Options{Seg: asm.FRAM, Scale: 2})
		if err != nil {
			return nil, err
		}
		tau := Series{Label: bench + " τ_B"}
		for _, entries := range []int{1, 2, 4, 8, 16, 32, 64} {
			cl := strategy.NewClank()
			cl.ReadFirstEntries = entries
			cl.WriteFirstEntries = entries
			res, err := runAblation(prog, cl, pm, 30000)
			if err != nil {
				return nil, err
			}
			tau.Points = append(tau.Points, Point{X: float64(entries), Y: res.MeanTauB()})
		}
		fig.Series = append(fig.Series, tau)
		first, last := tau.Points[0].Y, tau.Points[len(tau.Points)-1].Y
		fig.AddNote("%s: τ_B %.0f → %.0f cycles from 1 to 64 entries (×%.1f)",
			bench, first, last, last/first)
	}
	fig.AddNote("lzfx flattens early: per-iteration WAR violations dominate regardless of capacity")
	return fig, nil
}

// AblationClankWatchdog sweeps the watchdog period on an ALU-dominated
// kernel where the watchdog is the only checkpoint source, comparing
// measured progress against the EH model across the sweep.
func AblationClankWatchdog() (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-clank-watchdog",
		Title:  "Clank watchdog-period ablation (sha kernel)",
		XLabel: "watchdog period (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	pm := energy.CortexM0Power()
	w, _ := workload.Get("sha")
	// scale ≫ period so every configuration spans many power failures —
	// otherwise dead cycles never occur and rare backups trivially win
	prog, err := w.Build(workload.Options{Seg: asm.FRAM, Scale: 24})
	if err != nil {
		return nil, err
	}
	meas := Series{Label: "measured"}
	for _, wd := range []uint64{500, 1000, 2000, 4000, 8000, 16000} {
		cl := strategy.NewClank()
		cl.WatchdogCycles = wd
		cl.ReadFirstEntries = 4096 // watchdog-only checkpointing
		cl.WriteFirstEntries = 4096
		res, err := runAblation(prog, cl, pm, 20000)
		if err != nil {
			return nil, err
		}
		meas.Points = append(meas.Points, Point{X: float64(wd), Y: res.MeasuredProgress()})
	}
	fig.Series = append(fig.Series, meas)
	best := meas.Points[0]
	for _, p := range meas.Points {
		if p.Y > best.Y {
			best = p
		}
	}
	fig.AddNote("measured best watchdog ≈ %.0f cycles (p = %.4f)", best.X, best.Y)
	return fig, nil
}

// AblationHibernusMargin sweeps the voltage-threshold margin: tight
// margins maximize pre-hibernation work but risk dying mid-backup
// (§IV-B's inconsistent-state hazard, visible as periods whose backup
// failed), while loose margins waste energy idling.
func AblationHibernusMargin() (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-hibernus-margin",
		Title:  "Hibernus threshold-margin ablation (crc benchmark)",
		XLabel: "margin (× backup cost)",
		YLabel: "progress p / failed-backup fraction",
	}
	pm := energy.MSP430Power()
	w, _ := workload.Get("crc")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 4})
	if err != nil {
		return nil, err
	}
	prg := Series{Label: "measured p"}
	failed := Series{Label: "failed-backup fraction"}
	for _, margin := range []float64{1.02, 1.1, 1.5, 2, 3, 5, 8} {
		h := strategy.NewHibernus()
		h.Margin = margin
		// tight margins may never complete — dying mid-backup every
		// period is §IV-B's hazard and exactly what this ablation shows
		res, err := runAblationMaybe(prog, h, pm, 15000, 500)
		if err != nil {
			return nil, err
		}
		fails := 0
		for _, p := range res.Periods {
			if p.BackupCycles > 0 && p.Backups == 0 {
				fails++
			}
		}
		y := res.MeasuredProgress()
		if !res.Completed && res.Backups() == 0 {
			y = 0 // perpetual restart: no committed work at all
		}
		prg.Points = append(prg.Points, Point{X: margin, Y: y})
		failed.Points = append(failed.Points, Point{X: margin, Y: float64(fails) / float64(len(res.Periods))})
	}
	fig.Series = append(fig.Series, prg, failed)
	fig.AddNote("tight margins die mid-backup (§IV-B's inconsistency hazard); loose margins idle energy away")
	return fig, nil
}

// AblationMementosGap sweeps the minimum spacing between checkpoint
// commits once below threshold: no gating thrashes on every site; very
// wide gating risks dying between checkpoints.
func AblationMementosGap() (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-mementos-gap",
		Title:  "Mementos checkpoint-gating ablation (ds benchmark)",
		XLabel: "minimum gap between checkpoints (cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	pm := energy.MSP430Power()
	w, _ := workload.Get("ds")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 4})
	if err != nil {
		return nil, err
	}
	s := Series{Label: "measured p"}
	for _, gap := range []uint64{32, 128, 512, 2048, 8192} {
		m := strategy.NewMementos()
		m.MinGapCycles = gap
		res, err := runAblation(prog, m, pm, 15000)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: float64(gap), Y: res.MeasuredProgress()})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// VariabilityStudy measures the per-period progress distribution of a
// fixed-interval system — the empirical counterpart of Fig. 4's
// variability analysis. A bench supply would make every period
// identical (the simulator is deterministic), so the study drives the
// device from a multi-peak harvested trace: in-period charging varies
// with trace phase, shifting where each period dies relative to the
// backup schedule, exactly the supply-side non-determinism §IV-A2
// describes.
func VariabilityStudy(tauB uint64, periods int) (*Figure, error) {
	if periods <= 0 {
		periods = 40
	}
	pm := energy.MSP430Power()
	w, _ := workload.Get("counter")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 400})
	if err != nil {
		return nil, err
	}
	tr := trace.Generate(trace.MultiPeak, 10, 1e-3, 99)
	h, err := energy.NewHarvester(tr, 40000, 0.7) // peak power below core draw
	if err != nil {
		return nil, err
	}
	e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	d, err := device.New(device.Config{
		Prog: prog, Power: pm, Harvester: h,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: periods, MaxCycles: 1 << 62,
	}, strategy.NewTimer(tauB, 0.1))
	if err != nil {
		return nil, err
	}
	res, err := d.Run()
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "variability",
		Title:  fmt.Sprintf("Per-period progress distribution at τ_B=%d (Fig. 4 empirics)", tauB),
		XLabel: "active period",
		YLabel: "progress p",
	}
	samples := Series{Label: "per-period p"}
	for i, p := range res.Periods {
		if res.Completed && i == len(res.Periods)-1 {
			continue
		}
		supply := p.SupplyE + p.HarvestedE
		samples.Points = append(samples.Points, Point{X: float64(i), Y: p.ProgressE / supply})
	}
	fig.Series = append(fig.Series, samples)
	fig.AddNote("periods observed: %d", len(samples.Points))
	return fig, nil
}
