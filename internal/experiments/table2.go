package experiments

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/workload"
)

// Table2Row is one benchmark's inventory entry: Table II of the paper
// enriched with the measured characteristics the model consumes.
type Table2Row struct {
	Name          string
	Desc          string
	Instructions  uint64
	Cycles        uint64
	LoadFrac      float64 // loads per instruction
	StoreFrac     float64 // stores per instruction
	TauStore      float64 // mean cycles between stores
	SRAMFootprint int
}

// Table2 profiles a benchmark set (Table II by default; pass names to
// inventory other sets such as the MiBench kernels).
func Table2(names []string) ([]Table2Row, error) {
	var set []workload.Workload
	if names == nil {
		set = workload.TableII()
	} else {
		for _, n := range names {
			w, ok := workload.Get(n)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown workload %q", n)
			}
			set = append(set, w)
		}
	}
	var rows []Table2Row
	for _, w := range set {
		prog, err := w.Build(workload.Options{Seg: asm.SRAM})
		if err != nil {
			return nil, err
		}
		p, err := workload.ProfileProgram(prog, 100_000_000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Name:          w.Name,
			Desc:          w.Desc,
			Instructions:  p.Instructions,
			Cycles:        p.Cycles,
			LoadFrac:      float64(p.Loads) / float64(p.Instructions),
			StoreFrac:     float64(p.Stores) / float64(p.Instructions),
			TauStore:      p.StoreEveryCycles,
			SRAMFootprint: p.SRAMFootprint,
		})
	}
	return rows, nil
}
