package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// StoreMajorDevicePoint is one loop order × NVM bandwidth measurement
// on the full device simulator.
type StoreMajorDevicePoint struct {
	Order      workload.TransposeOrder
	SigmaRatio float64 // σ_B/σ_load on the NVM
	Progress   float64
	DirtyBytes float64 // mean backup payload (α_B·τ_B made concrete)
	Cycles     uint64
}

// CaseStoreMajorDevice runs Listing 1 end-to-end on the intermittent
// device with a mixed-volatility cache and a checkpoint-aware runtime —
// the §VI-A case study as an execution rather than an equation. For
// each NVM write/read bandwidth ratio it reports both loop orders'
// progress; Eq. 14 predicts store-major wins exactly when writes are
// slow. One cell per ratio × order, through the memoizing executor.
func CaseStoreMajorDevice(ctx context.Context, run runner.Options) (*Figure, []StoreMajorDevicePoint, error) {
	const (
		n    = 16
		reps = 6
	)
	pm := energy.MSP430Power()
	fig := &Figure{
		ID:     "case-storemajor-device",
		Title:  "Store-major vs load-major transpose on the device simulator (§VI-A)",
		XLabel: "σ_B/σ_load",
		YLabel: "progress p",
		XLog:   true,
	}
	series := map[workload.TransposeOrder]*Series{
		workload.LoadMajor:  {Label: "load-major"},
		workload.StoreMajor: {Label: "store-major"},
	}
	want := workload.TransposeRef(n)
	ratios := []float64{0.1, 0.5, 1, 2}
	orders := []workload.TransposeOrder{workload.LoadMajor, workload.StoreMajor}
	type job struct {
		ratio float64
		order workload.TransposeOrder
	}
	var jobs []job
	plan := sweep.NewPlan("case-storemajor-device")
	for _, ratio := range ratios {
		g := plan.Group(fmt.Sprintf("σ-ratio=%g", ratio))
		for _, order := range orders {
			ratio, order := ratio, order
			jobs = append(jobs, job{ratio: ratio, order: order})
			g.Add(sweep.Cell{
				Label: fmt.Sprintf("transpose %v σ-ratio=%g", order, ratio),
				Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
					prog, err := workload.Transpose(order, n, reps)
					if err != nil {
						return device.Config{}, nil, err
					}
					e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
					capC, vmax, von, voff := device.FixedSupplyConfig(e)
					return device.Config{
						Prog: prog, Power: pm,
						CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
						SigmaB: 2 * ratio, SigmaR: 2, // σ_load fixed at FRAM speed
						CacheBlockSize: 32, CacheSets: 16, CacheWays: 2,
						MaxPeriods: 100000, MaxCycles: 1 << 62,
					}, strategy.NewCacheVolatile(), nil
				},
				Verify: func(res *device.Result) error {
					if !res.Completed {
						return fmt.Errorf("experiments: transpose %v σ-ratio %g incomplete", order, ratio)
					}
					if len(res.Output) != 1 || res.Output[0] != want[0] {
						return fmt.Errorf("experiments: transpose %v output %v, want %v", order, res.Output, want)
					}
					return nil
				},
			})
		}
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	if len(errs) > 0 {
		return nil, nil, errs[0].Err
	}

	var pts []StoreMajorDevicePoint
	for i, j := range jobs {
		res := all[i].Result
		var dirty, cnt float64
		for _, p := range res.Periods {
			for _, b := range p.AppBytes {
				dirty += float64(b)
				cnt++
			}
		}
		if cnt > 0 {
			dirty /= cnt
		}
		pt := StoreMajorDevicePoint{
			Order:      j.order,
			SigmaRatio: j.ratio,
			Progress:   res.MeasuredProgress(),
			DirtyBytes: dirty,
			Cycles:     res.TotalCycles,
		}
		pts = append(pts, pt)
		s := series[j.order]
		s.Points = append(s.Points, Point{X: j.ratio, Y: pt.Progress})
	}
	fig.Series = append(fig.Series, *series[workload.LoadMajor], *series[workload.StoreMajor])

	// annotate the dirty-footprint asymmetry at the slow-write corner
	var lmDirty, smDirty float64
	for _, pt := range pts {
		if pt.SigmaRatio == 0.1 {
			if pt.Order == workload.LoadMajor {
				lmDirty = pt.DirtyBytes
			} else {
				smDirty = pt.DirtyBytes
			}
		}
	}
	fig.AddNote("mean backup payload at σ_B=σ_load/10: load-major %.0f B vs store-major %.0f B (×%.1f)",
		lmDirty, smDirty, lmDirty/smDirty)
	return fig, pts, nil
}
