package experiments

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
)

func TestBreakdownComparison(t *testing.T) {
	_, rows, err := BreakdownComparison(context.Background(), "crc", 0, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]BreakdownRow{}
	for _, r := range rows {
		byName[r.System] = r
		sum := r.Progress + r.Dead + r.Backup + r.Restore + r.Idle + r.Residual
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %g", r.System, sum)
		}
		for _, v := range []float64{r.Progress, r.Dead, r.Backup, r.Restore, r.Idle} {
			if v < 0 || v > 1 {
				t.Errorf("%s: fraction %g out of range", r.System, v)
			}
		}
	}
	// signature behaviours: Hibernus hibernates (idle > 0, zero-ish
	// dead); DINO's full-snapshot tasks make it the backup-heaviest of
	// the SRAM runtimes; Clank's 80-byte checkpoints are far lighter
	// than DINO's.
	if byName["hibernus"].Idle <= 0 {
		t.Error("hibernus should record idle (hibernation) energy")
	}
	if byName["hibernus"].Dead > 0.02 {
		t.Errorf("hibernus dead fraction %g should be negligible", byName["hibernus"].Dead)
	}
	if byName["dino"].Backup <= byName["chain"].Backup {
		t.Error("dino's full snapshots should out-cost chain's task-data commits")
	}
	if byName["clank"].Backup >= byName["dino"].Backup {
		t.Error("clank's register checkpoints should undercut dino's snapshots")
	}
}

func TestBreakdownUnknown(t *testing.T) {
	if _, _, err := BreakdownComparison(context.Background(), "nope", 0, runner.Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
