package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// BreakEvenPoint is one τ_B setting's backup and restore invocation
// rates.
type BreakEvenPoint struct {
	TauB             float64
	BackupsPerPeriod float64
	Progress         float64
}

// BreakEvenStudy verifies §IV-A3's structural claim empirically: the
// break-even point τ_B,be of Eq. 11 is where backups-per-period cross
// one — beyond it the device restores more often than it backs up, so
// restore cost dominates the optimization agenda. The study sweeps τ_B
// on the simulator (one cell per setting, through the memoizing
// executor), locates the empirical crossover, and compares it against
// Eq. 11 evaluated from the run's own measurements.
func BreakEvenStudy(ctx context.Context, run runner.Options) (*Figure, []BreakEvenPoint, float64, error) {
	pm := energy.MSP430Power()
	const periodCycles = 20000

	fig := &Figure{
		ID:     "breakeven",
		Title:  "Backup/restore invocation crossover vs Eq. 11 (§IV-A3)",
		XLabel: "τ_B (cycles)",
		YLabel: "backups per period",
		XLog:   true,
	}
	rate := Series{Label: "backups per period"}
	prg := Series{Label: "progress p"}

	tauBs := []uint64{1000, 2000, 4000, 8000, 12000, 16000, 24000, 32000}
	plan := sweep.NewPlan("breakeven")
	for _, tauB := range tauBs {
		tauB := tauB
		plan.Add(sweep.Cell{
			Label: fmt.Sprintf("breakeven τ_B=%d cycles", tauB),
			Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
				w, _ := workload.Get("counter")
				prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 120})
				if err != nil {
					return device.Config{}, nil, err
				}
				cfg := fixedConfig(prog, pm, periodCycles, 16)
				return cfg, strategy.NewTimer(tauB, 0.1), nil
			},
		})
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	if len(errs) > 0 {
		return nil, nil, 0, errs[0].Err
	}

	var pts []BreakEvenPoint
	var tauBE float64
	for i, tauB := range tauBs {
		res := all[i].Result
		periods := len(res.Periods)
		pt := BreakEvenPoint{
			TauB:             float64(tauB),
			BackupsPerPeriod: float64(res.Backups()) / float64(periods),
			Progress:         res.MeasuredProgress(),
		}
		pts = append(pts, pt)
		rate.Points = append(rate.Points, Point{X: pt.TauB, Y: pt.BackupsPerPeriod})
		prg.Points = append(prg.Points, Point{X: pt.TauB, Y: pt.Progress})

		// evaluate Eq. 11 once, from a mid-sweep run's measurements
		if tauB == 8000 {
			params, _ := PredictFromRun(res, all[i].Cfg, false)
			tauBE = params.TauBBreakEven()
		}
	}
	fig.Series = append(fig.Series, rate, prg)

	// locate the empirical crossover of one backup per period
	cross := 0.0
	for i := 1; i < len(pts); i++ {
		if pts[i-1].BackupsPerPeriod >= 1 && pts[i].BackupsPerPeriod < 1 {
			// log-linear interpolation between the straddling points
			x0, x1 := pts[i-1].TauB, pts[i].TauB
			y0, y1 := pts[i-1].BackupsPerPeriod, pts[i].BackupsPerPeriod
			cross = x0 + (1-y0)/(y1-y0)*(x1-x0)
			break
		}
	}
	fig.AddNote("Eq. 11 break-even τ_B,be = %.0f cycles (from measured parameters)", tauBE)
	if cross > 0 {
		fig.AddNote("empirical one-backup-per-period crossover ≈ %.0f cycles", cross)
	}
	fig.AddNote("beyond the crossover, restores (one per period) outnumber backups — optimize restores there")
	if cross == 0 {
		return fig, pts, tauBE, fmt.Errorf("experiments: sweep did not straddle the crossover")
	}
	return fig, pts, tauBE, nil
}
