package experiments

import (
	"fmt"
	"math"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// Fig6Config parametrizes the three-systems validation (§V-A, Fig. 6).
type Fig6Config struct {
	// PeriodCycles is the per-period energy budget in ALU cycles
	// (default 12000, small enough that the Table II benchmarks span
	// multiple periods).
	PeriodCycles float64
	// Scale is the workload problem-size multiplier (default 4).
	Scale int
}

func (c *Fig6Config) setDefaults() {
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 12000
	}
	if c.Scale == 0 {
		c.Scale = 4
	}
}

// Fig6Point is one benchmark × system validation sample.
type Fig6Point struct {
	Bench     string
	System    string
	Measured  float64
	Predicted float64
	RelErr    float64
}

// fig6Systems returns the validated runtimes in paper order.
func fig6Systems() []struct {
	name   string
	single bool
	make   func() device.Strategy
} {
	return []struct {
		name   string
		single bool
		make   func() device.Strategy
	}{
		{"hibernus", true, func() device.Strategy { return strategy.NewHibernus() }},
		{"mementos", false, func() device.Strategy { return strategy.NewMementos() }},
		{"dino", false, func() device.Strategy { return strategy.NewDINO() }},
	}
}

// runFixed executes a workload program under a strategy with a fixed
// per-period supply, requiring completion.
func runFixed(prog *asm.Program, s device.Strategy, periodCycles float64) (*device.Result, device.Config, error) {
	pm := energy.MSP430Power()
	e := periodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog:       prog,
		Power:      pm,
		CapC:       capC,
		CapVMax:    vmax,
		VOn:        von,
		VOff:       voff,
		MaxPeriods: 100000,
		MaxCycles:  1 << 62,
	}
	d, err := device.New(cfg, s)
	if err != nil {
		return nil, cfg, err
	}
	res, err := d.Run()
	if err != nil {
		return nil, d.Cfg(), err
	}
	if !res.Completed {
		return nil, d.Cfg(), fmt.Errorf("experiments: %s/%s did not complete (%d periods)",
			s.Name(), prog.Name, len(res.Periods))
	}
	return res, d.Cfg(), nil
}

// PredictFromRun builds EH-model parameters from a measured run and
// returns the model's progress prediction — the workflow behind the
// paper's second intro question ("can a programmer estimate how well
// their application will perform under a specific architectural
// configuration?"). The run supplies E, ε, τ_B and the checkpoint
// payload; the device config supplies the NVM costs. A snapshotting
// system's full checkpoint payload is a per-backup compulsory cost, so
// it maps to A_B with α_B = 0. Set single for single-backup runtimes
// (Eq. 12); otherwise Eq. 8 applies.
func PredictFromRun(res *device.Result, cfg device.Config, single bool) (core.Params, float64) {
	pm := cfg.Power
	payload := stats.Mean(res.PayloadSamples())
	params := core.Params{
		E:        res.MeanSupply(),
		Epsilon:  res.MeasuredEpsilon(),
		EpsilonC: 0,
		TauB:     math.Max(res.MeanTauB(), 1),
		SigmaB:   cfg.SigmaB,
		OmegaB:   pm.EnergyPerCycle(energy.ClassMem)/cfg.SigmaB + cfg.OmegaBExtra,
		AB:       payload,
		AlphaB:   0,
		SigmaR:   cfg.SigmaR,
		OmegaR:   pm.EnergyPerCycle(energy.ClassMem)/cfg.SigmaR + cfg.OmegaRExtra,
		AR:       payload,
		AlphaR:   0,
	}
	var p float64
	if single {
		p = params.ProgressSingleBackup()
	} else {
		p = params.Progress()
	}
	return params, math.Min(p, 1)
}

// Fig6 measures forward progress for Hibernus, Mementos and DINO across
// the Table II benchmarks and compares against the EH model's
// prediction, reporting per-system geometric-mean error as the paper
// does.
func Fig6(cfg Fig6Config) (*Figure, []Fig6Point, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "fig6",
		Title:  "Measured vs EH-model-predicted progress (Fig. 6)",
		XLabel: "measured p",
		YLabel: "predicted p",
	}
	var pts []Fig6Point
	perSystemErr := map[string][]float64{}
	for _, sys := range fig6Systems() {
		s := Series{Label: sys.name}
		for _, w := range workload.TableII() {
			prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: cfg.Scale})
			if err != nil {
				return nil, nil, err
			}
			res, dcfg, err := runFixed(prog, sys.make(), cfg.PeriodCycles)
			if err != nil {
				return nil, nil, err
			}
			_, pred := PredictFromRun(res, dcfg, sys.single)
			meas := res.MeasuredProgress()
			pt := Fig6Point{
				Bench:     w.Name,
				System:    sys.name,
				Measured:  meas,
				Predicted: pred,
				RelErr:    stats.RelErr(pred, meas),
			}
			pts = append(pts, pt)
			perSystemErr[sys.name] = append(perSystemErr[sys.name], pt.RelErr)
			s.Points = append(s.Points, Point{X: meas, Y: pred})
		}
		fig.Series = append(fig.Series, s)
	}
	var all []float64
	for _, sys := range fig6Systems() {
		errs := perSystemErr[sys.name]
		fig.AddNote("%s: geomean |error| = %.2f%%", sys.name, 100*stats.GeoMean(errs))
		all = append(all, errs...)
	}
	fig.AddNote("overall geomean |error| = %.2f%%", 100*stats.GeoMean(all))
	return fig, pts, nil
}

// Fig7Point is one DINO benchmark's progress against how close its task
// granularity sits to the model's optimal τ_B.
type Fig7Point struct {
	Bench      string
	Measured   float64
	TauB       float64
	TauBOpt    float64
	Similarity float64 // min(τ_B/τ_B,opt, τ_B,opt/τ_B) ∈ (0, 1]
}

// Fig7 reproduces the τ_B-optimality correlation: benchmarks whose DINO
// task length lands near τ_B,opt make the most progress.
func Fig7(cfg Fig6Config) (*Figure, []Fig7Point, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "fig7",
		Title:  "Progress vs similarity of τ_B to τ_B,opt under DINO (Fig. 7)",
		XLabel: "similarity min(τ_B/τ_B,opt, τ_B,opt/τ_B)",
		YLabel: "measured p",
	}
	var pts []Fig7Point
	s := Series{Label: "dino benchmarks"}
	for _, w := range workload.TableII() {
		prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: cfg.Scale})
		if err != nil {
			return nil, nil, err
		}
		res, dcfg, err := runFixed(prog, strategy.NewDINO(), cfg.PeriodCycles)
		if err != nil {
			return nil, nil, err
		}
		params, _ := PredictFromRun(res, dcfg, false)
		opt := params.TauBOpt()
		tauB := params.TauB
		sim := tauB / opt
		if sim > 1 {
			sim = 1 / sim
		}
		pt := Fig7Point{
			Bench:      w.Name,
			Measured:   res.MeasuredProgress(),
			TauB:       tauB,
			TauBOpt:    opt,
			Similarity: sim,
		}
		pts = append(pts, pt)
		s.Points = append(s.Points, Point{X: pt.Similarity, Y: pt.Measured})
	}
	fig.Series = append(fig.Series, s)
	var xs, ys []float64
	for _, pt := range pts {
		xs = append(xs, pt.Similarity)
		ys = append(ys, pt.Measured)
	}
	if r, err := stats.Pearson(xs, ys); err == nil {
		fig.AddNote("Pearson correlation(similarity, progress) = %.3f", r)
	}
	return fig, pts, nil
}
