package experiments

import (
	"context"
	"fmt"
	"math"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// Fig6Config parametrizes the three-systems validation (§V-A, Fig. 6).
type Fig6Config struct {
	// PeriodCycles is the per-period energy budget in ALU cycles
	// (default 12000, small enough that the Table II benchmarks span
	// multiple periods).
	PeriodCycles float64
	// Scale is the workload problem-size multiplier (default 4).
	Scale int
	// Run configures the parallel sweep engine.
	Run runner.Options
}

func (c *Fig6Config) setDefaults() {
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 12000
	}
	if c.Scale == 0 {
		c.Scale = 4
	}
}

// Fig6Point is one benchmark × system validation sample.
type Fig6Point struct {
	Bench     string
	System    string
	Measured  float64
	Predicted float64
	RelErr    float64
}

// fig6Systems returns the validated runtimes in paper order.
func fig6Systems() []struct {
	name   string
	single bool
	make   func() device.Strategy
} {
	return []struct {
		name   string
		single bool
		make   func() device.Strategy
	}{
		{"hibernus", true, func() device.Strategy { return strategy.NewHibernus() }},
		{"mementos", false, func() device.Strategy { return strategy.NewMementos() }},
		{"dino", false, func() device.Strategy { return strategy.NewDINO() }},
	}
}

// PredictFromRun builds EH-model parameters from a measured run and
// returns the model's progress prediction — the workflow behind the
// paper's second intro question ("can a programmer estimate how well
// their application will perform under a specific architectural
// configuration?"). The run supplies E, ε, τ_B and the checkpoint
// payload; the device config supplies the NVM costs. A snapshotting
// system's full checkpoint payload is a per-backup compulsory cost, so
// it maps to A_B with α_B = 0. Set single for single-backup runtimes
// (Eq. 12); otherwise Eq. 8 applies.
func PredictFromRun(res *device.Result, cfg device.Config, single bool) (core.Params, float64) {
	pm := cfg.Power
	payload := stats.Mean(res.PayloadSamples())
	params := core.Params{
		E:        res.MeanSupply(),
		Epsilon:  res.MeasuredEpsilon(),
		EpsilonC: 0,
		TauB:     math.Max(res.MeanTauB(), 1),
		SigmaB:   cfg.SigmaB,
		OmegaB:   pm.EnergyPerCycle(energy.ClassMem)/cfg.SigmaB + cfg.OmegaBExtra,
		AB:       payload,
		AlphaB:   0,
		SigmaR:   cfg.SigmaR,
		OmegaR:   pm.EnergyPerCycle(energy.ClassMem)/cfg.SigmaR + cfg.OmegaRExtra,
		AR:       payload,
		AlphaR:   0,
	}
	var p float64
	if single {
		p = params.ProgressSingleBackup()
	} else {
		p = params.Progress()
	}
	return params, math.Min(p, 1)
}

// Fig6 measures forward progress for Hibernus, Mementos and DINO across
// the Table II benchmarks — a plan of one group per system, one cell
// per benchmark — and compares against the EH model's prediction,
// reporting per-system geometric-mean error as the paper does.
func Fig6(ctx context.Context, cfg Fig6Config) (*Figure, []Fig6Point, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "fig6",
		Title:  "Measured vs EH-model-predicted progress (Fig. 6)",
		XLabel: "measured p",
		YLabel: "predicted p",
	}
	systems := fig6Systems()
	benches := workload.TableII()
	type job struct{ sys, bench int }
	var jobs []job
	plan := sweep.NewPlan("fig6")
	for si := range systems {
		sys := systems[si]
		g := plan.Group(sys.name)
		for bi := range benches {
			w := benches[bi]
			jobs = append(jobs, job{sys: si, bench: bi})
			g.Add(fixedCell(
				fmt.Sprintf("fig6 %s/%s", sys.name, w.Name),
				cfg.PeriodCycles,
				func(ctx context.Context) (*asm.Program, device.Strategy, error) {
					prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: cfg.Scale})
					if err != nil {
						return nil, nil, err
					}
					return prog, sys.make(), nil
				}))
		}
	}
	all, errs := sweep.RunPlan(ctx, plan, cfg.Run)
	failed := errs.FailedSet()

	var pts []Fig6Point
	perSystemErr := map[string][]float64{}
	series := make([]Series, len(systems))
	for si, sys := range systems {
		series[si] = Series{Label: sys.name}
	}
	for i, j := range jobs {
		if failed[i] {
			continue
		}
		sys, w := systems[j.sys], benches[j.bench]
		res := all[i].Result
		_, pred := PredictFromRun(res, all[i].Cfg, sys.single)
		meas := res.MeasuredProgress()
		pt := Fig6Point{
			Bench:     w.Name,
			System:    sys.name,
			Measured:  meas,
			Predicted: pred,
			RelErr:    stats.RelErr(pred, meas),
		}
		pts = append(pts, pt)
		perSystemErr[pt.System] = append(perSystemErr[pt.System], pt.RelErr)
		series[j.sys].Points = append(series[j.sys].Points, Point{X: pt.Measured, Y: pt.Predicted})
	}
	fig.Series = append(fig.Series, series...)
	var allErrs []float64
	for _, sys := range systems {
		es := perSystemErr[sys.name]
		if len(es) == 0 {
			continue
		}
		fig.AddNote("%s: geomean |error| = %.2f%%", sys.name, 100*stats.GeoMean(es))
		allErrs = append(allErrs, es...)
	}
	if len(allErrs) > 0 {
		fig.AddNote("overall geomean |error| = %.2f%%", 100*stats.GeoMean(allErrs))
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(jobs)))
		return fig, pts, errs
	}
	return fig, pts, nil
}

// Fig7Point is one DINO benchmark's progress against how close its task
// granularity sits to the model's optimal τ_B.
type Fig7Point struct {
	Bench      string
	Measured   float64
	TauB       float64
	TauBOpt    float64
	Similarity float64 // min(τ_B/τ_B,opt, τ_B,opt/τ_B) ∈ (0, 1]
}

// Fig7 reproduces the τ_B-optimality correlation: benchmarks whose DINO
// task length lands near τ_B,opt make the most progress.
func Fig7(ctx context.Context, cfg Fig6Config) (*Figure, []Fig7Point, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "fig7",
		Title:  "Progress vs similarity of τ_B to τ_B,opt under DINO (Fig. 7)",
		XLabel: "similarity min(τ_B/τ_B,opt, τ_B,opt/τ_B)",
		YLabel: "measured p",
	}
	benches := workload.TableII()
	plan := sweep.NewPlan("fig7")
	for bi := range benches {
		w := benches[bi]
		plan.Add(fixedCell(
			"fig7 dino/"+w.Name,
			cfg.PeriodCycles,
			func(ctx context.Context) (*asm.Program, device.Strategy, error) {
				prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: cfg.Scale})
				if err != nil {
					return nil, nil, err
				}
				return prog, strategy.NewDINO(), nil
			}))
	}
	all, errs := sweep.RunPlan(ctx, plan, cfg.Run)
	failed := errs.FailedSet()

	var pts []Fig7Point
	s := Series{Label: "dino benchmarks"}
	for i := range benches {
		if failed[i] {
			continue
		}
		res := all[i].Result
		params, _ := PredictFromRun(res, all[i].Cfg, false)
		opt := params.TauBOpt()
		tauB := params.TauB
		sim := tauB / opt
		if sim > 1 {
			sim = 1 / sim
		}
		pt := Fig7Point{
			Bench:      benches[i].Name,
			Measured:   res.MeasuredProgress(),
			TauB:       tauB,
			TauBOpt:    opt,
			Similarity: sim,
		}
		pts = append(pts, pt)
		s.Points = append(s.Points, Point{X: pt.Similarity, Y: pt.Measured})
	}
	fig.Series = append(fig.Series, s)
	var xs, ys []float64
	for _, pt := range pts {
		xs = append(xs, pt.Similarity)
		ys = append(ys, pt.Measured)
	}
	if r, err := stats.Pearson(xs, ys); err == nil {
		fig.AddNote("Pearson correlation(similarity, progress) = %.3f", r)
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(benches)))
		return fig, pts, errs
	}
	return fig, pts, nil
}
