package experiments

import (
	"context"
	"math"
	"testing"

	"ehmodel/internal/runner"
)

// TestChargingStudy validates the model's ε_C terms: measured progress
// (normalized to the capacitor supply) tracks Eq. 8 as in-period
// harvesting grows, and crosses p = 1 where the model says extra
// harvested work exceeds the capacitor budget.
func TestChargingStudy(t *testing.T) {
	_, pts, err := ChargingStudy(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if math.Abs(p.Measured-p.Predicted) > 0.07 {
			t.Errorf("ε_C/ε=%.3f: measured %.4f vs model %.4f", p.EpsilonCOverEps, p.Measured, p.Predicted)
		}
		if i > 0 && p.EpsilonCOverEps <= pts[i-1].EpsilonCOverEps {
			t.Errorf("harvest sweep not increasing at %d", i)
		}
		if i > 0 && p.Measured < pts[i-1].Measured-1e-9 {
			t.Errorf("measured p fell as charging grew at ε_C/ε=%.3f", p.EpsilonCOverEps)
		}
	}
	// the strongest harvest level must push measured progress past the
	// capacitor-only ceiling of 1 — §III's divergence made visible
	if last := pts[len(pts)-1]; last.Measured <= 1 {
		t.Errorf("expected p > 1 at ε_C/ε=%.3f, got %.4f", last.EpsilonCOverEps, last.Measured)
	}
	if pts[0].Measured >= 1 {
		t.Error("no-harvest baseline cannot exceed 1")
	}
}
