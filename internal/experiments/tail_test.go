package experiments

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
)

// TestTailLatencyStudy verifies §IV-A2's design trade-off empirically:
// dead-cycle variability grows with τ_B, and the per-period tail
// degrades faster than the mean beyond the optimum — so tail-focused
// designs must not choose a longer τ_B than average-focused ones.
func TestTailLatencyStudy(t *testing.T) {
	_, pts, err := TailLatencyStudy(context.Background(), 60, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("%d points", len(pts))
	}
	byTau := map[float64]TailPoint{}
	var bestMean, bestTail TailPoint
	for _, p := range pts {
		byTau[p.TauB] = p
		if p.P5 > p.MeanP+1e-9 {
			t.Errorf("τ_B=%g: tail %.4f above mean %.4f", p.TauB, p.P5, p.MeanP)
		}
		if p.MeanP > bestMean.MeanP {
			bestMean = p
		}
		if p.P5 > bestTail.P5 {
			bestTail = p
		}
	}
	// Eq. 10's structure: the tail-optimal interval is never longer
	// than the mean-optimal one.
	if bestTail.TauB > bestMean.TauB {
		t.Errorf("tail-optimal τ_B %g exceeds mean-optimal %g", bestTail.TauB, bestMean.TauB)
	}
	// variability grows with τ_B through the multi-backup regime
	if !(byTau[250].Spread < byTau[1000].Spread && byTau[1000].Spread < byTau[4000].Spread) {
		t.Errorf("spread should grow with τ_B: %g, %g, %g",
			byTau[250].Spread, byTau[1000].Spread, byTau[4000].Spread)
	}
	// doubling τ_B past the optimum costs the tail relatively more than
	// the mean
	opt, twice := byTau[bestMean.TauB], byTau[bestMean.TauB*2]
	if twice.TauB != 0 {
		meanLoss := (opt.MeanP - twice.MeanP) / opt.MeanP
		tailLoss := (opt.P5 - twice.P5) / opt.P5
		if tailLoss <= meanLoss {
			t.Errorf("tail should degrade faster past the optimum: mean loss %.4f vs tail loss %.4f",
				meanLoss, tailLoss)
		}
	}
}
