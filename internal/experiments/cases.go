package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/mem"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// --- §VI-A: store-major locality ---

// StoreMajorPoint compares the cache simulator's measured backup traffic
// with the Eq. 13/14 analysis for one NVM bandwidth ratio.
type StoreMajorPoint struct {
	SigmaRatio    float64 // σ_B / σ_load
	MeasuredRatio float64 // load-major : store-major total overhead cycles
	ModelRatio    float64 // Eq. 13
	StoreWins     bool    // Eq. 14
}

// CaseStoreMajor runs the Listing 1 matrix transpose through the
// mixed-volatility cache model in load-major and store-major order,
// taking a backup every β_block/β_store stores, and compares the
// overhead-cycle ratio against Eqs. 13–14 across NVM write/read
// bandwidth ratios (including the 10×-slow-writes STT-RAM case).
func CaseStoreMajor() (*Figure, []StoreMajorPoint, error) {
	const (
		n         = 64
		wordBytes = 4
		blockSize = 32
	)
	// Simulate both orders once: traffic in bytes is
	// bandwidth-independent; cycle ratios then follow from σ.
	type traffic struct{ loadBytes, backupBytes int }
	run := func(storeMajor bool) (traffic, error) {
		c, err := mem.NewCache(blockSize, 64, 4)
		if err != nil {
			return traffic{}, err
		}
		var tr traffic
		stores := 0
		aBase, bBase := uint32(0), uint32(n*n*wordBytes)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var la, sa uint32
				if storeMajor {
					la = aBase + uint32((j*n+i)*wordBytes)
					sa = bBase + uint32((i*n+j)*wordBytes)
				} else {
					la = aBase + uint32((i*n+j)*wordBytes)
					sa = bBase + uint32((j*n+i)*wordBytes)
				}
				if hit, _ := c.Access(la, false); !hit {
					tr.loadBytes += blockSize
				}
				if _, wb := c.Access(sa, true); wb {
					tr.backupBytes += blockSize
				}
				if stores++; stores%(blockSize/wordBytes) == 0 {
					tr.backupBytes += c.FlushDirty() * blockSize
				}
			}
		}
		tr.backupBytes += c.FlushDirty() * blockSize
		return tr, nil
	}
	lm, err := run(false)
	if err != nil {
		return nil, nil, err
	}
	sm, err := run(true)
	if err != nil {
		return nil, nil, err
	}

	fig := &Figure{
		ID:     "case-storemajor",
		Title:  "Store-major vs load-major transpose on a mixed-volatility cache (§VI-A)",
		XLabel: "σ_B/σ_load",
		YLabel: "overhead ratio τ_lm/τ_sm",
		XLog:   true,
	}
	var pts []StoreMajorPoint
	measured := Series{Label: "cache simulation"}
	model := Series{Label: "Eq. 13"}
	for _, ratio := range []float64{0.1, 0.2, 0.5, 1, 2, 5, 10} {
		sigmaLoad := 1.0
		sigmaB := ratio * sigmaLoad
		cycles := func(t traffic) float64 {
			return float64(t.loadBytes)/sigmaLoad + float64(t.backupBytes)/sigmaB
		}
		measuredRatio := cycles(lm) / cycles(sm)

		// Eq. 13 with parameters matching the simulated kernel: equal
		// read/write footprints, 4-byte accesses, 32-byte blocks.
		base := core.DefaultParams()
		base.SigmaB = sigmaB
		base.AlphaB = 0.5
		lp := core.LocalityParams{
			Model:     base,
			AlphaLoad: 0.5,
			SigmaLoad: sigmaLoad,
			BetaBlock: blockSize,
			BetaLoad:  wordBytes,
			BetaStore: wordBytes,
		}
		pt := StoreMajorPoint{
			SigmaRatio:    ratio,
			MeasuredRatio: measuredRatio,
			ModelRatio:    lp.OverheadRatio(),
			StoreWins:     lp.StoreMajorWins(),
		}
		pts = append(pts, pt)
		measured.Points = append(measured.Points, Point{X: ratio, Y: pt.MeasuredRatio})
		model.Points = append(model.Points, Point{X: ratio, Y: pt.ModelRatio})
	}
	fig.Series = append(fig.Series, measured, model)
	fig.AddNote("equal footprints and σ_B = σ_load give ratio ≈ 1 (no winner), as §VI-A derives")
	fig.AddNote("σ_B = σ_load/10 (STT-RAM-like writes) puts store-major ahead")
	return fig, pts, nil
}

// --- §VI-B: circular buffers for idempotency ---

// CircularConfig parametrizes the Clank circular-buffer sweep.
type CircularConfig struct {
	ArrayN int // logical array size (default 32)
	Iters  int // outer passes (default 60)
	// BufNs are the buffer sizes swept; zero value derives a sweep from
	// the Eq. 15 plan.
	BufNs []int
	// PeriodCycles sizes the supply (default 40000).
	PeriodCycles float64
	// Run configures the parallel sweep engine.
	Run runner.Options
}

func (c *CircularConfig) setDefaults() {
	if c.ArrayN == 0 {
		c.ArrayN = 32
	}
	if c.Iters == 0 {
		c.Iters = 60
	}
	if c.PeriodCycles == 0 {
		c.PeriodCycles = 40000
	}
}

// CircularPoint is one buffer size's measured behaviour.
type CircularPoint struct {
	BufN         int
	PredictedTau float64 // (N − n + 1)·τ_store
	MeasuredTau  float64
	Progress     float64
}

// CaseCircularBuffer sweeps the Listing 2 circular-buffer size on a
// Clank machine with large tracking buffers (isolating
// idempotency-violation control from buffer-capacity effects), checking
// that τ_B follows (N−n+1)·τ_store and that progress peaks near the
// Eq. 15 plan. One cell per buffer size, through the memoizing
// executor.
func CaseCircularBuffer(ctx context.Context, cfg CircularConfig) (*Figure, []CircularPoint, core.CircularBufferPlan, error) {
	cfg.setDefaults()
	pm := energy.CortexM0Power()
	e := cfg.PeriodCycles * pm.EnergyPerCycle(energy.ClassALU)

	// model parameters of this Clank machine for Eq. 9
	arch := core.Params{
		E:       e / pm.EnergyPerCycle(energy.ClassALU), // in cycles of ε
		Epsilon: 1,
		TauB:    1,
		SigmaB:  2,
		OmegaB:  pm.EnergyPerCycle(energy.ClassMem) / 2 / pm.EnergyPerCycle(energy.ClassALU),
		AB:      80,
		AlphaB:  0,
		SigmaR:  2,
		OmegaR:  pm.EnergyPerCycle(energy.ClassMem) / 2 / pm.EnergyPerCycle(energy.ClassALU),
		AR:      80,
		AlphaR:  0,
	}
	tauOpt := arch.TauBOpt()
	plan, err := core.OptimalCircularBuffer(cfg.ArrayN, workload.CircularBufferStoreCycles(), tauOpt, 0)
	if err != nil {
		return nil, nil, plan, err
	}
	if cfg.BufNs == nil {
		n := cfg.ArrayN
		span := plan.N - n
		cfg.BufNs = []int{
			n, n + span/8, n + span/4, n + span/2, n + 3*span/4,
			plan.N, n + span*3/2, n + span*3,
		}
	}

	fig := &Figure{
		ID:     "case-circular",
		Title:  "Circular-buffer sizing for idempotency on Clank (§VI-B)",
		XLabel: "buffer size N",
		YLabel: "progress p / τ_B (cycles)",
	}
	tauPred := Series{Label: "τ_B predicted (N−n+1)·τ_store"}
	tauMeas := Series{Label: "τ_B measured"}
	prog := Series{Label: "measured progress"}
	splan := sweep.NewPlan("case-circular")
	for _, bufN := range cfg.BufNs {
		bufN := bufN
		splan.Add(sweep.Cell{
			Label: fmt.Sprintf("circular N=%d", bufN),
			Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
				p, err := workload.CircularBuffer(cfg.ArrayN, bufN, cfg.Iters, asm.FRAM)
				if err != nil {
					return device.Config{}, nil, err
				}
				capC, vmax, von, voff := device.FixedSupplyConfig(e)
				cl := strategy.NewClank()
				cl.ReadFirstEntries = 4096 // isolate violation-driven backups
				cl.WriteFirstEntries = 4096
				cl.WatchdogCycles = 1 << 40
				return device.Config{
					Prog: p, Power: pm,
					CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
					MaxPeriods: 100000, MaxCycles: 1 << 62,
				}, cl, nil
			},
			Verify: func(res *device.Result) error {
				if !res.Completed {
					return fmt.Errorf("experiments: circular N=%d did not complete", bufN)
				}
				return nil
			},
		})
	}
	all, errs := sweep.RunPlan(ctx, splan, cfg.Run)
	if len(errs) > 0 {
		return nil, nil, plan, errs[0].Err
	}
	var pts []CircularPoint
	for i, bufN := range cfg.BufNs {
		res := all[i].Result
		pt := CircularPoint{
			BufN:         bufN,
			PredictedTau: core.StoresBetweenViolations(bufN, cfg.ArrayN, 0) * workload.CircularBufferStoreCycles(),
			MeasuredTau:  res.MeanTauB(),
			Progress:     res.MeasuredProgress(),
		}
		pts = append(pts, pt)
		tauPred.Points = append(tauPred.Points, Point{X: float64(bufN), Y: pt.PredictedTau})
		tauMeas.Points = append(tauMeas.Points, Point{X: float64(bufN), Y: pt.MeasuredTau})
		prog.Points = append(prog.Points, Point{X: float64(bufN), Y: pt.Progress})
	}
	fig.Series = append(fig.Series, tauPred, tauMeas, prog)
	fig.AddNote("Eq. 9 τ_B,opt = %.0f cycles → Eq. 15 plan N_opt = %d (pow2 %d)", tauOpt, plan.N, plan.NPow2)
	best := pts[0]
	for _, pt := range pts {
		if pt.Progress > best.Progress {
			best = pt
		}
	}
	fig.AddNote("measured best N = %d (p = %.4f)", best.BufN, best.Progress)
	return fig, pts, plan, nil
}

// --- §VI-C: reduced bit-precision ---

// CaseBitPrecision evaluates the Fig. 11 analysis at a configuration
// with a large register file (the paper's headline example): reducing
// application-state precision by one bit at τ_B,bit.
type BitPrecisionResult struct {
	TauBBit    float64
	GainOneBit float64 // Δp for a 1-bit (12.5%) α_B reduction at τ_B,bit
	GainAtOpt  float64 // Δp for the same cut at τ_B,opt instead
}

// CaseBitPrecision quantifies where reduced-precision backups pay off.
func CaseBitPrecision(base core.Params) BitPrecisionResult {
	bit := base.TauBBit()
	opt := base.TauBOpt()
	return BitPrecisionResult{
		TauBBit:    bit,
		GainOneBit: deltaPForBitCut(base.WithTauB(bit)),
		GainAtOpt:  deltaPForBitCut(base.WithTauB(opt)),
	}
}
