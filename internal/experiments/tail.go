package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// TailPoint is one τ_B setting's per-period progress distribution.
type TailPoint struct {
	TauB   float64
	MeanP  float64
	P5     float64 // 5th percentile per-period progress (tail)
	Spread float64 // max − min per-period progress
}

// TailLatencyStudy makes §IV-A2's design trade-off empirical: under a
// varying harvested supply, long backup intervals raise the *average*
// per-period progress while widening its distribution, so the τ_B that
// maximizes the worst periods (tail) sits at or below the τ_B that
// maximizes the mean — the structural content of Eq. 10's
// τ_B,opt(wc) < τ_B,opt. The sweep is one cell per τ_B through the
// memoizing executor.
func TailLatencyStudy(ctx context.Context, periods int, run runner.Options) (*Figure, []TailPoint, error) {
	if periods <= 0 {
		periods = 60
	}
	pm := energy.MSP430Power()

	fig := &Figure{
		ID:     "tail",
		Title:  "Average vs tail per-period progress across τ_B (§IV-A2)",
		XLabel: "τ_B (cycles)",
		YLabel: "per-period progress",
		XLog:   true,
	}
	meanS := Series{Label: "mean p"}
	tailS := Series{Label: "5th percentile p"}

	tauBs := []uint64{250, 500, 1000, 2000, 4000, 8000, 14000}
	plan := sweep.NewPlan("tail")
	for _, tauB := range tauBs {
		tauB := tauB
		plan.Add(sweep.Cell{
			Label: fmt.Sprintf("tail τ_B=%d cycles", tauB),
			Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
				w, _ := workload.Get("counter")
				prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 600})
				if err != nil {
					return device.Config{}, nil, err
				}
				tr := trace.Generate(trace.MultiPeak, 10, 1e-3, 77)
				h, err := energy.NewHarvester(tr, 40000, 0.7)
				if err != nil {
					return device.Config{}, nil, err
				}
				e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
				capC, vmax, von, voff := device.FixedSupplyConfig(e)
				return device.Config{
					Prog: prog, Power: pm, Harvester: h,
					CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
					MaxPeriods: periods, MaxCycles: 1 << 62,
				}, strategy.NewTimer(tauB, 0.1), nil
			},
		})
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	if len(errs) > 0 {
		return nil, nil, errs[0].Err
	}

	var pts []TailPoint
	for i, tauB := range tauBs {
		res := all[i].Result
		var samples []float64
		for j := range res.Periods {
			if res.Completed && j == len(res.Periods)-1 {
				continue
			}
			p := &res.Periods[j]
			samples = append(samples, p.ProgressE/(p.SupplyE+p.HarvestedE))
		}
		if len(samples) < periods/2 {
			return nil, nil, fmt.Errorf("experiments: tail study τ_B=%d too short (%d periods)", tauB, len(samples))
		}
		pt := TailPoint{
			TauB:   float64(tauB),
			MeanP:  stats.Mean(samples),
			P5:     stats.Percentile(samples, 5),
			Spread: stats.Percentile(samples, 100) - stats.Percentile(samples, 0),
		}
		pts = append(pts, pt)
		meanS.Points = append(meanS.Points, Point{X: pt.TauB, Y: pt.MeanP})
		tailS.Points = append(tailS.Points, Point{X: pt.TauB, Y: pt.P5})
	}
	fig.Series = append(fig.Series, meanS, tailS)

	bestMean, bestTail := pts[0], pts[0]
	for _, pt := range pts {
		if pt.MeanP > bestMean.MeanP {
			bestMean = pt
		}
		if pt.P5 > bestTail.P5 {
			bestTail = pt
		}
	}
	fig.AddNote("mean-optimal τ_B ≈ %.0f (mean p %.3f); tail-optimal τ_B ≈ %.0f (p5 %.3f)",
		bestMean.TauB, bestMean.MeanP, bestTail.TauB, bestTail.P5)
	fig.AddNote("Eq. 10's takeaway: design for tail latency by backing up more often than the average-case optimum")
	return fig, pts, nil
}
