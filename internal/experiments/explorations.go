package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// Design-space explorations beyond the paper's figures, in the style of
// the simulators its Related Work surveys (NVPsim's energy-buffer and
// NVM-technology sweeps), each cross-checked against the EH model.

// CapacitorSweep measures progress as the energy buffer grows — the
// model's E axis made empirical. One-time costs (restore, dead
// execution) amortize over larger buffers, so both the model and the
// measurement should rise toward the backup-limited asymptote.
func CapacitorSweep(ctx context.Context, bench string, periodCycles []float64, run runner.Options) (*Figure, error) {
	if periodCycles == nil {
		periodCycles = []float64{3000, 6000, 12000, 24000, 48000, 96000}
	}
	w, ok := workload.Get(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 8})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "exploration-capacitor",
		Title:  fmt.Sprintf("Energy-buffer sizing for %s under DINO", bench),
		XLabel: "per-period supply E (ALU cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	type capPoint struct{ measured, predicted float64 }
	o := run
	o.Label = func(i int) string {
		return fmt.Sprintf("capacitor %s E=%g cycles", bench, periodCycles[i])
	}
	all, errs := runner.Map(ctx, len(periodCycles), o, func(i int) (capPoint, error) {
		res, dcfg, err := runFixed(ctx, prog, strategy.NewDINO(), periodCycles[i], run)
		if err != nil {
			return capPoint{}, err
		}
		_, pred := PredictFromRun(res, dcfg, false)
		return capPoint{measured: res.MeasuredProgress(), predicted: pred}, nil
	})
	failed := errs.FailedSet()
	for i, pc := range periodCycles {
		if failed[i] {
			continue
		}
		meas.Points = append(meas.Points, Point{X: pc, Y: all[i].measured})
		model.Points = append(model.Points, Point{X: pc, Y: all[i].predicted})
	}
	fig.Series = append(fig.Series, meas, model)
	if n := len(meas.Points); n > 1 {
		fig.AddNote("p rises %.3f → %.3f as the buffer grows ×%g: one-time costs amortize",
			meas.Points[0].Y, meas.Points[n-1].Y, meas.Points[n-1].X/meas.Points[0].X)
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(periodCycles)))
		return fig, errs
	}
	return fig, nil
}

// NVMComparisonPoint is one technology's measured and predicted
// progress.
type NVMComparisonPoint struct {
	NVM       string
	Measured  float64
	Predicted float64
}

// NVMComparison runs the same workload and backup cadence over FRAM,
// STT-RAM and Flash checkpoint memories, comparing measured progress
// with the model evaluated at each technology's Ω_B/σ_B.
func NVMComparison(ctx context.Context, bench string, tauB uint64, run runner.Options) (*Figure, []NVMComparisonPoint, error) {
	w, ok := workload.Get(bench)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 8})
	if err != nil {
		return nil, nil, err
	}
	fig := &Figure{
		ID:     "exploration-nvm",
		Title:  fmt.Sprintf("Checkpoint NVM technology comparison (%s, timer τ_B=%d)", bench, tauB),
		XLabel: "technology index",
		YLabel: "progress p",
	}
	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	pm := energy.MSP430Power()
	nvms := energy.NVMProfiles()
	o := run
	o.Label = func(i int) string { return "nvm " + nvms[i].Name + "/" + bench }
	all, errs := runner.Map(ctx, len(nvms), o, func(i int) (NVMComparisonPoint, error) {
		nvm := nvms[i]
		e := 30000 * pm.EnergyPerCycle(energy.ClassALU)
		capC, vmax, von, voff := device.FixedSupplyConfig(e)
		d, err := device.New(device.Config{
			Prog: prog, Power: pm,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			SigmaB: nvm.SigmaB, SigmaR: nvm.SigmaR,
			OmegaBExtra: nvm.OmegaBExtra, OmegaRExtra: nvm.OmegaRExtra,
			MaxPeriods: 100000, MaxCycles: 1 << 62,
			RunTimeout: run.RunTimeout,
			Interrupt:  runner.Interrupt(ctx),
		}, strategy.NewTimer(tauB, 0.1))
		if err != nil {
			return NVMComparisonPoint{}, err
		}
		res, err := d.Run()
		if err != nil {
			return NVMComparisonPoint{}, err
		}
		if !res.Completed {
			return NVMComparisonPoint{}, fmt.Errorf("experiments: %s on %s incomplete", bench, nvm.Name)
		}
		payload := stats.Mean(res.PayloadSamples())
		params := core.Params{
			E:       res.MeanSupply(),
			Epsilon: res.MeasuredEpsilon(),
			TauB:    float64(tauB),
			SigmaB:  nvm.SigmaB,
			OmegaB:  pm.EnergyPerCycle(energy.ClassMem)/nvm.SigmaB + nvm.OmegaBExtra,
			AB:      payload,
			SigmaR:  nvm.SigmaR,
			OmegaR:  pm.EnergyPerCycle(energy.ClassMem)/nvm.SigmaR + nvm.OmegaRExtra,
			AR:      payload,
		}
		return NVMComparisonPoint{
			NVM:       nvm.Name,
			Measured:  res.MeasuredProgress(),
			Predicted: params.Progress(),
		}, nil
	})
	failed := errs.FailedSet()
	var pts []NVMComparisonPoint
	for i := range nvms {
		if failed[i] {
			continue
		}
		pt := all[i]
		pts = append(pts, pt)
		meas.Points = append(meas.Points, Point{X: float64(i), Y: pt.Measured})
		model.Points = append(model.Points, Point{X: float64(i), Y: pt.Predicted})
		fig.AddNote("x=%d: %s — measured %.4f, model %.4f", i, pt.NVM, pt.Measured, pt.Predicted)
	}
	fig.Series = append(fig.Series, meas, model)
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(nvms)))
		return fig, pts, errs
	}
	return fig, pts, nil
}
