package experiments

import (
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// Design-space explorations beyond the paper's figures, in the style of
// the simulators its Related Work surveys (NVPsim's energy-buffer and
// NVM-technology sweeps), each cross-checked against the EH model.

// CapacitorSweep measures progress as the energy buffer grows — the
// model's E axis made empirical. One-time costs (restore, dead
// execution) amortize over larger buffers, so both the model and the
// measurement should rise toward the backup-limited asymptote.
func CapacitorSweep(bench string, periodCycles []float64) (*Figure, error) {
	if periodCycles == nil {
		periodCycles = []float64{3000, 6000, 12000, 24000, 48000, 96000}
	}
	w, ok := workload.Get(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 8})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "exploration-capacitor",
		Title:  fmt.Sprintf("Energy-buffer sizing for %s under DINO", bench),
		XLabel: "per-period supply E (ALU cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	for _, pc := range periodCycles {
		res, dcfg, err := runFixed(prog, strategy.NewDINO(), pc)
		if err != nil {
			return nil, err
		}
		_, pred := PredictFromRun(res, dcfg, false)
		meas.Points = append(meas.Points, Point{X: pc, Y: res.MeasuredProgress()})
		model.Points = append(model.Points, Point{X: pc, Y: pred})
	}
	fig.Series = append(fig.Series, meas, model)
	first, last := meas.Points[0].Y, meas.Points[len(meas.Points)-1].Y
	fig.AddNote("p rises %.3f → %.3f as the buffer grows ×%g: one-time costs amortize",
		first, last, periodCycles[len(periodCycles)-1]/periodCycles[0])
	return fig, nil
}

// NVMComparisonPoint is one technology's measured and predicted
// progress.
type NVMComparisonPoint struct {
	NVM       string
	Measured  float64
	Predicted float64
}

// NVMComparison runs the same workload and backup cadence over FRAM,
// STT-RAM and Flash checkpoint memories, comparing measured progress
// with the model evaluated at each technology's Ω_B/σ_B.
func NVMComparison(bench string, tauB uint64) (*Figure, []NVMComparisonPoint, error) {
	w, ok := workload.Get(bench)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 8})
	if err != nil {
		return nil, nil, err
	}
	fig := &Figure{
		ID:     "exploration-nvm",
		Title:  fmt.Sprintf("Checkpoint NVM technology comparison (%s, timer τ_B=%d)", bench, tauB),
		XLabel: "technology index",
		YLabel: "progress p",
	}
	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	pm := energy.MSP430Power()
	var pts []NVMComparisonPoint
	for i, nvm := range energy.NVMProfiles() {
		e := 30000 * pm.EnergyPerCycle(energy.ClassALU)
		capC, vmax, von, voff := device.FixedSupplyConfig(e)
		d, err := device.New(device.Config{
			Prog: prog, Power: pm,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			SigmaB: nvm.SigmaB, SigmaR: nvm.SigmaR,
			OmegaBExtra: nvm.OmegaBExtra, OmegaRExtra: nvm.OmegaRExtra,
			MaxPeriods: 100000, MaxCycles: 1 << 62,
		}, strategy.NewTimer(tauB, 0.1))
		if err != nil {
			return nil, nil, err
		}
		res, err := d.Run()
		if err != nil {
			return nil, nil, err
		}
		if !res.Completed {
			return nil, nil, fmt.Errorf("experiments: %s on %s incomplete", bench, nvm.Name)
		}
		payload := stats.Mean(res.PayloadSamples())
		params := core.Params{
			E:       res.MeanSupply(),
			Epsilon: res.MeasuredEpsilon(),
			TauB:    float64(tauB),
			SigmaB:  nvm.SigmaB,
			OmegaB:  pm.EnergyPerCycle(energy.ClassMem)/nvm.SigmaB + nvm.OmegaBExtra,
			AB:      payload,
			SigmaR:  nvm.SigmaR,
			OmegaR:  pm.EnergyPerCycle(energy.ClassMem)/nvm.SigmaR + nvm.OmegaRExtra,
			AR:      payload,
		}
		pt := NVMComparisonPoint{
			NVM:       nvm.Name,
			Measured:  res.MeasuredProgress(),
			Predicted: params.Progress(),
		}
		pts = append(pts, pt)
		meas.Points = append(meas.Points, Point{X: float64(i), Y: pt.Measured})
		model.Points = append(model.Points, Point{X: float64(i), Y: pt.Predicted})
		fig.AddNote("x=%d: %s — measured %.4f, model %.4f", i, nvm.Name, pt.Measured, pt.Predicted)
	}
	fig.Series = append(fig.Series, meas, model)
	return fig, pts, nil
}
