package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/stats"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// Design-space explorations beyond the paper's figures, in the style of
// the simulators its Related Work surveys (NVPsim's energy-buffer and
// NVM-technology sweeps), each cross-checked against the EH model.

// CapacitorSweep measures progress as the energy buffer grows — the
// model's E axis made empirical. One-time costs (restore, dead
// execution) amortize over larger buffers, so both the model and the
// measurement should rise toward the backup-limited asymptote.
func CapacitorSweep(ctx context.Context, bench string, periodCycles []float64, run runner.Options) (*Figure, error) {
	if periodCycles == nil {
		periodCycles = []float64{3000, 6000, 12000, 24000, 48000, 96000}
	}
	w, ok := workload.Get(bench)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	fig := &Figure{
		ID:     "exploration-capacitor",
		Title:  fmt.Sprintf("Energy-buffer sizing for %s under DINO", bench),
		XLabel: "per-period supply E (ALU cycles)",
		YLabel: "progress p",
		XLog:   true,
	}
	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	plan := sweep.NewPlan("exploration-capacitor")
	for _, pc := range periodCycles {
		plan.Add(fixedCell(
			fmt.Sprintf("capacitor %s E=%g cycles", bench, pc),
			pc,
			func(ctx context.Context) (*asm.Program, device.Strategy, error) {
				prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 8})
				if err != nil {
					return nil, nil, err
				}
				return prog, strategy.NewDINO(), nil
			}))
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()
	for i, pc := range periodCycles {
		if failed[i] {
			continue
		}
		res := all[i].Result
		_, pred := PredictFromRun(res, all[i].Cfg, false)
		meas.Points = append(meas.Points, Point{X: pc, Y: res.MeasuredProgress()})
		model.Points = append(model.Points, Point{X: pc, Y: pred})
	}
	fig.Series = append(fig.Series, meas, model)
	if n := len(meas.Points); n > 1 {
		fig.AddNote("p rises %.3f → %.3f as the buffer grows ×%g: one-time costs amortize",
			meas.Points[0].Y, meas.Points[n-1].Y, meas.Points[n-1].X/meas.Points[0].X)
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(periodCycles)))
		return fig, errs
	}
	return fig, nil
}

// NVMComparisonPoint is one technology's measured and predicted
// progress.
type NVMComparisonPoint struct {
	NVM       string
	Measured  float64
	Predicted float64
}

// NVMComparison runs the same workload and backup cadence over FRAM,
// STT-RAM and Flash checkpoint memories, comparing measured progress
// with the model evaluated at each technology's Ω_B/σ_B.
func NVMComparison(ctx context.Context, bench string, tauB uint64, run runner.Options) (*Figure, []NVMComparisonPoint, error) {
	w, ok := workload.Get(bench)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	fig := &Figure{
		ID:     "exploration-nvm",
		Title:  fmt.Sprintf("Checkpoint NVM technology comparison (%s, timer τ_B=%d)", bench, tauB),
		XLabel: "technology index",
		YLabel: "progress p",
	}
	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	pm := energy.MSP430Power()
	nvms := energy.NVMProfiles()
	plan := sweep.NewPlan("exploration-nvm")
	for i := range nvms {
		nvm := nvms[i]
		plan.Add(sweep.Cell{
			Label: "nvm " + nvm.Name + "/" + bench,
			Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
				prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 8})
				if err != nil {
					return device.Config{}, nil, err
				}
				e := 30000 * pm.EnergyPerCycle(energy.ClassALU)
				capC, vmax, von, voff := device.FixedSupplyConfig(e)
				return device.Config{
					Prog: prog, Power: pm,
					CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
					SigmaB: nvm.SigmaB, SigmaR: nvm.SigmaR,
					OmegaBExtra: nvm.OmegaBExtra, OmegaRExtra: nvm.OmegaRExtra,
					MaxPeriods: 100000, MaxCycles: 1 << 62,
				}, strategy.NewTimer(tauB, 0.1), nil
			},
			Verify: func(res *device.Result) error {
				if !res.Completed {
					return fmt.Errorf("experiments: %s on %s incomplete", bench, nvm.Name)
				}
				return nil
			},
		})
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()
	var pts []NVMComparisonPoint
	for i := range nvms {
		if failed[i] {
			continue
		}
		nvm, res := nvms[i], all[i].Result
		payload := stats.Mean(res.PayloadSamples())
		params := core.Params{
			E:       res.MeanSupply(),
			Epsilon: res.MeasuredEpsilon(),
			TauB:    float64(tauB),
			SigmaB:  nvm.SigmaB,
			OmegaB:  pm.EnergyPerCycle(energy.ClassMem)/nvm.SigmaB + nvm.OmegaBExtra,
			AB:      payload,
			SigmaR:  nvm.SigmaR,
			OmegaR:  pm.EnergyPerCycle(energy.ClassMem)/nvm.SigmaR + nvm.OmegaRExtra,
			AR:      payload,
		}
		pt := NVMComparisonPoint{
			NVM:       nvm.Name,
			Measured:  res.MeasuredProgress(),
			Predicted: params.Progress(),
		}
		pts = append(pts, pt)
		meas.Points = append(meas.Points, Point{X: float64(i), Y: pt.Measured})
		model.Points = append(model.Points, Point{X: float64(i), Y: pt.Predicted})
		fig.AddNote("x=%d: %s — measured %.4f, model %.4f", i, pt.NVM, pt.Measured, pt.Predicted)
	}
	fig.Series = append(fig.Series, meas, model)
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(nvms)))
		return fig, pts, errs
	}
	return fig, pts, nil
}
