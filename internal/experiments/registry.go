package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/runner"
)

// The figure registry is the one catalog of everything this repo can
// regenerate — each paper figure, table and case study keyed by the ID
// the ehfigs CLI and the ehserve service both accept. Centralizing it
// here means a figure added to the catalog is immediately reachable
// from both front ends and from tests.

// Failure records one figure that could not be (fully) generated.
type Failure struct {
	ID  string
	Err error
}

// FigureIDs returns every identifier GenerateFigures accepts besides
// "all", in catalog order.
func FigureIDs() []string {
	return []string{
		"2", "3", "4", "5", "6", "7", "8", "9", "10", "11",
		"table2", "storemajor", "storemajor-device", "circular", "bitprecision",
		"clank-buffers", "clank-watchdog", "hibernus-margin", "mementos-gap",
		"variability", "capacitor", "nvm", "breakdown", "breakeven",
		"charging", "tail",
	}
}

// KnownFigureID reports whether id names a catalog entry ("all" counts).
func KnownFigureID(id string) bool {
	if id == "all" {
		return true
	}
	for _, k := range FigureIDs() {
		if k == id {
			return true
		}
	}
	return false
}

// GenerateFigures builds the requested figures ("all" or a single ID).
// Figures that fail are recorded rather than aborting the batch; a
// driver that returns a partial figure alongside its error contributes
// both — the survivors render, the error lands in the failure report.
// Simulation sweeps execute through the process-default sweep executor,
// so a front end that installed a memoizing store serves repeats from
// cache.
func GenerateFigures(ctx context.Context, which string, quick bool, run runner.Options) ([]*Figure, []Failure) {
	want := func(id string) bool { return which == "all" || which == id }
	var figs []*Figure
	var failures []Failure
	add := func(f *Figure) { figs = append(figs, f) }
	// collect appends the figure (possibly partial) and the error —
	// whichever the generator produced.
	collect := func(id string, f *Figure, err error) {
		if f != nil {
			figs = append(figs, f)
		}
		if err != nil {
			failures = append(failures, Failure{ID: id, Err: err})
		}
	}

	if want("2") {
		add(Fig2())
	}
	if want("3") {
		add(Fig3())
	}
	if want("4") {
		add(Fig4())
	}
	if want("5") {
		cfg := Fig5Config{}
		if quick {
			cfg = QuickFig5Config()
		}
		cfg.Run = run
		f, _, err := Fig5(ctx, cfg)
		collect("5", f, err)
	}
	if want("6") {
		f, _, err := Fig6(ctx, Fig6Config{Run: run})
		collect("6", f, err)
	}
	if want("7") {
		f, _, err := Fig7(ctx, Fig6Config{Run: run})
		collect("7", f, err)
	}
	if want("8") || want("9") {
		cfg := CharacterizationConfig{}
		if quick {
			cfg = QuickCharacterizationConfig()
		}
		cfg.Run = run
		f8, f9, _, err := Fig8And9(ctx, cfg)
		if !want("8") {
			f8 = nil
		}
		if !want("9") {
			f9 = nil
		}
		if f8 != nil {
			add(f8)
		}
		if f9 != nil {
			add(f9)
		}
		if err != nil {
			failures = append(failures, Failure{ID: "8/9", Err: err})
		}
	}
	if want("10") {
		cfg := CharacterizationConfig{}
		if quick {
			cfg = QuickCharacterizationConfig()
		}
		cfg.Run = run
		f, _, err := Fig10(ctx, cfg)
		collect("10", f, err)
	}
	if want("11") {
		add(Fig11(Fig11Config{Base: DefaultFig11Base()}))
	}
	if want("table2") {
		rows, err := Table2(nil)
		if err != nil {
			failures = append(failures, Failure{ID: "table2", Err: err})
		} else {
			f := &Figure{ID: "table2", Title: "Table II benchmark inventory (measured characteristics)"}
			for _, r := range rows {
				f.AddNote("%-6s %s — %d instrs, %d cycles, %.1f%% loads, %.1f%% stores, τ_store %.0f, %d B sram",
					r.Name, r.Desc, r.Instructions, r.Cycles, 100*r.LoadFrac, 100*r.StoreFrac, r.TauStore, r.SRAMFootprint)
			}
			add(f)
		}
	}
	if want("storemajor") {
		f, _, err := CaseStoreMajor()
		collect("storemajor", f, err)
	}
	if want("storemajor-device") {
		f, _, err := CaseStoreMajorDevice(ctx, run)
		collect("storemajor-device", f, err)
	}
	if want("circular") {
		f, _, _, err := CaseCircularBuffer(ctx, CircularConfig{Run: run})
		collect("circular", f, err)
	}
	for _, abl := range []struct {
		id  string
		gen func(context.Context, runner.Options) (*Figure, error)
	}{
		{"clank-buffers", AblationClankBuffers},
		{"clank-watchdog", AblationClankWatchdog},
		{"hibernus-margin", AblationHibernusMargin},
		{"mementos-gap", AblationMementosGap},
	} {
		if want(abl.id) {
			f, err := abl.gen(ctx, run)
			collect(abl.id, f, err)
		}
	}
	if want("tail") {
		f, _, err := TailLatencyStudy(ctx, 0, run)
		collect("tail", f, err)
	}
	if want("charging") {
		f, _, err := ChargingStudy(ctx, run)
		collect("charging", f, err)
	}
	if want("breakeven") {
		f, _, _, err := BreakEvenStudy(ctx, run)
		collect("breakeven", f, err)
	}
	if want("breakdown") {
		f, _, err := BreakdownComparison(ctx, "crc", 0, run)
		collect("breakdown", f, err)
	}
	if want("capacitor") {
		f, err := CapacitorSweep(ctx, "crc", nil, run)
		collect("capacitor", f, err)
	}
	if want("nvm") {
		f, _, err := NVMComparison(ctx, "crc", 2000, run)
		collect("nvm", f, err)
	}
	if want("variability") {
		f, err := VariabilityStudy(ctx, 4000, 40, run)
		collect("variability", f, err)
	}
	if want("bitprecision") {
		base := DefaultFig11Base()
		r := CaseBitPrecision(base)
		f := &Figure{ID: "case-bitprecision", Title: "Reduced bit-precision payoff (§VI-C)"}
		f.AddNote("τ_B,bit = %.1f cycles", r.TauBBit)
		f.AddNote("Δp for a 1-bit α_B cut at τ_B,bit: %.4f", r.GainOneBit)
		f.AddNote("Δp for the same cut at τ_B,opt: %.4f", r.GainAtOpt)
		add(f)
	}
	if len(figs) == 0 && len(failures) == 0 {
		failures = append(failures, Failure{ID: which, Err: fmt.Errorf("unknown figure %q", which)})
	}
	return figs, failures
}
