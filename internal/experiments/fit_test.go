package experiments

import (
	"math"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// TestFitFromSimulatedMeasurements closes the loop the fit API exists
// for: sweep the backup interval on the device simulator (standing in
// for hardware measurements), fit the identifiable curve, and check
// the recovered optimum against both the empirical argmax and the
// model evaluated from first principles.
func TestFitFromSimulatedMeasurements(t *testing.T) {
	pm := energy.MSP430Power()
	w, _ := workload.Get("counter")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 60})
	if err != nil {
		t.Fatal(err)
	}
	e := 20000 * pm.EnergyPerCycle(energy.ClassALU)

	measure := func(tauB uint64) float64 {
		capC, vmax, von, voff := device.FixedSupplyConfig(e)
		d, err := device.New(device.Config{
			Prog: prog, Power: pm,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			MaxPeriods: 12, MaxCycles: 1 << 62,
		}, strategy.NewTimer(tauB, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.MeasuredProgress()
	}

	var pts []core.SweepPoint
	var best core.SweepPoint
	for _, tauB := range []uint64{100, 200, 400, 800, 1600, 3200, 6400, 12800} {
		pt := core.SweepPoint{X: float64(tauB), P: measure(tauB)}
		pts = append(pts, pt)
		if pt.P > best.P {
			best = pt
		}
	}

	fc, err := core.FitSweep(pts)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Residual > 0.05 {
		t.Fatalf("fit residual %g too large for simulated measurements", fc.Residual)
	}
	opt := fc.TauBOpt()
	// the fitted optimum must land within the sweep's resolution of the
	// empirical best (neighbouring points are 2× apart)
	if ratio := opt / best.X; ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("fitted τ_B,opt %g far from empirical best %g", opt, best.X)
	}
	// and the fitted curve must predict the measured points it was
	// trained on (sanity against degenerate fits). Large τ_B points
	// carry real dead-cycle quantization noise — a couple of backups
	// per period land wherever the period boundary falls — so the
	// tolerance is loose.
	for _, pt := range pts {
		if math.Abs(fc.Eval(pt.X)-pt.P) > 0.12 {
			t.Errorf("τ_B=%g: fit %g vs measured %g", pt.X, fc.Eval(pt.X), pt.P)
		}
	}
}
