package experiments

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
)

func TestAblationClankBuffers(t *testing.T) {
	fig, err := AblationClankBuffers(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// τ_B must be monotone non-decreasing in buffer capacity
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y*0.95 {
				t.Errorf("%s: τ_B shrank with capacity at %g entries (%g → %g)",
					s.Label, s.Points[i].X, s.Points[i-1].Y, s.Points[i].Y)
			}
		}
	}
	// lzfx's per-iteration violations cap its τ_B well below susan's at
	// large capacities
	susan, lzfx := fig.Series[0], fig.Series[1]
	last := len(susan.Points) - 1
	if lzfx.Points[last].Y >= susan.Points[last].Y {
		t.Errorf("at 64 entries lzfx τ_B (%g) should stay below susan's (%g)",
			lzfx.Points[last].Y, susan.Points[last].Y)
	}
}

func TestAblationClankWatchdog(t *testing.T) {
	fig, err := AblationClankWatchdog(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	// an interior sweet spot: the best watchdog is neither the smallest
	// nor the largest swept value (Eq. 9's trade-off made empirical)
	best := 0
	for i, p := range pts {
		if p.Y > pts[best].Y {
			best = i
		}
	}
	if best == 0 {
		t.Errorf("most frequent watchdog should not win (per-checkpoint cost dominates)")
	}
	if best == len(pts)-1 {
		t.Errorf("least frequent watchdog should not win (dead cycles dominate)")
	}
	// and the empirical optimum must sit within the sweep cell of the
	// Eq. 9 estimate for this machine (R ≈ 46 cycles, E/ε ≈ 20000 →
	// τ_B,opt ≈ 1300; the sweep is octave-spaced).
	if x := pts[best].X; x < 500 || x > 4000 {
		t.Errorf("empirical best watchdog %g far from Eq. 9's regime", x)
	}
}

func TestAblationHibernusMargin(t *testing.T) {
	fig, err := AblationHibernusMargin(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prg, failed := fig.Series[0], fig.Series[1]
	// progress at the loosest margin must fall below the best observed:
	// idling away 8× the backup cost each period is wasteful
	best := prg.Points[0].Y
	for _, p := range prg.Points {
		if p.Y > best {
			best = p.Y
		}
	}
	loosest := prg.Points[len(prg.Points)-1].Y
	if loosest >= best {
		t.Errorf("loose margin should lose progress: %g vs best %g", loosest, best)
	}
	for _, p := range failed.Points {
		if p.Y < 0 || p.Y > 1 {
			t.Errorf("failed fraction %g out of range", p.Y)
		}
	}
}

func TestAblationMementosGap(t *testing.T) {
	fig, err := AblationMementosGap(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Y <= 0 || p.Y > 1 {
			t.Errorf("gap %g: progress %g out of range", p.X, p.Y)
		}
	}
}

func TestVariabilityStudy(t *testing.T) {
	fig, err := VariabilityStudy(context.Background(), 4000, 30, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := fig.Series[0].Points
	if len(pts) < 10 {
		t.Fatalf("only %d period samples", len(pts))
	}
	lo, hi := 2.0, -1.0
	for _, p := range pts {
		if p.Y < 0 || p.Y > 1 {
			t.Fatalf("per-period p %g out of range", p.Y)
		}
		if p.Y < lo {
			lo = p.Y
		}
		if p.Y > hi {
			hi = p.Y
		}
	}
	// with τ_B a fifth of the period, dead-cycle luck must spread the
	// per-period progress noticeably (Fig. 4's message)
	if hi-lo < 0.01 {
		t.Errorf("no variability observed: [%g, %g]", lo, hi)
	}
}

func TestVariabilityStudyDefaults(t *testing.T) {
	fig, err := VariabilityStudy(context.Background(), 2000, 0, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Points) == 0 {
		t.Fatal("no samples with default period count")
	}
}
