package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ehmodel/internal/core"
)

func TestFig2ShapeAndOptima(t *testing.T) {
	f := Fig2()
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(f.Series))
	}
	// Takeaway 1: lower Ω_B is better everywhere.
	cheap, dear := f.Series[0], f.Series[3]
	for i := range cheap.Points {
		if cheap.Points[i].Y < dear.Points[i].Y-1e-12 {
			t.Fatalf("point %d: cheap backups worse than expensive", i)
		}
	}
	// Takeaway 2: each curve's peak sits at its own τ_B,opt, which
	// shifts with Ω_B.
	var peaks []float64
	for _, s := range f.Series {
		best := s.Points[0]
		for _, p := range s.Points {
			if p.Y > best.Y {
				best = p
			}
		}
		peaks = append(peaks, best.X)
	}
	if !(peaks[0] < peaks[3]) {
		t.Errorf("optimal τ_B should grow with backup cost: %v", peaks)
	}
	if len(f.Notes) == 0 {
		t.Error("missing optima notes")
	}
}

func TestFig3Monotone(t *testing.T) {
	f := Fig3()
	for _, s := range f.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+1e-12 {
				t.Fatalf("%s: progress increased with τ_B at %g", s.Label, s.Points[i].X)
			}
		}
	}
}

func TestFig4BoundsOrdered(t *testing.T) {
	f := Fig4()
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	best, avg, worst := f.Series[0], f.Series[1], f.Series[2]
	for i := range best.Points {
		if !(worst.Points[i].Y <= avg.Points[i].Y && avg.Points[i].Y <= best.Points[i].Y) {
			t.Fatalf("bounds disordered at τ_B=%g", best.Points[i].X)
		}
	}
	// variability collapses as τ_B → 0
	first := best.Points[0].Y - worst.Points[0].Y
	last := best.Points[len(best.Points)-1].Y - worst.Points[len(worst.Points)-1].Y
	if first > last {
		t.Errorf("variability should grow with τ_B: gap %g → %g", first, last)
	}
}

func TestFig11CurvesPeakAtTauBBit(t *testing.T) {
	base := DefaultFig11Base()
	ratios := []float64{10, 25, 50, 100}
	f := Fig11(Fig11Config{Base: base, Ratios: ratios})
	if len(f.Series) != len(ratios) {
		t.Fatalf("series = %d, want %d", len(f.Series), len(ratios))
	}
	var bits []float64
	for i, s := range f.Series {
		best := s.Points[0]
		for _, p := range s.Points {
			if p.Y > best.Y {
				best = p
			}
		}
		if best.Y <= 0 {
			t.Fatalf("%s: peak not positive", s.Label)
		}
		// the curve's empirical peak must straddle the analytic τ_B,bit
		p := base
		p.AlphaB = alphaForRatio(base, ratios[i])
		bit := p.TauBBit()
		bits = append(bits, bit)
		if rel := math.Abs(best.X-bit) / bit; rel > 0.15 {
			t.Errorf("%s: empirical peak at %g vs τ_B,bit %g", s.Label, best.X, bit)
		}
	}
	// smaller ratios favour more frequent backups: τ_B,bit grows with
	// the ratio (§VI-C).
	for i := 1; i < len(bits); i++ {
		if bits[i] <= bits[i-1] {
			t.Errorf("τ_B,bit should grow with the ratio: %v", bits)
		}
	}
	if len(f.Notes) < len(f.Series) {
		t.Error("expected per-curve τ_B,bit notes")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Fig3()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,y,err\n") {
		t.Fatalf("missing header: %q", out[:40])
	}
	if strings.Count(out, "\n") < 100 {
		t.Error("csv suspiciously short")
	}
	if f.find("Ω_B=1") == nil || f.find("missing") != nil {
		t.Error("find misbehaves")
	}
}

func TestCaseBitPrecision(t *testing.T) {
	r := CaseBitPrecision(DefaultFig11Base())
	if r.TauBBit <= 0 {
		t.Fatal("no τ_B,bit")
	}
	if r.GainOneBit <= 0 {
		t.Fatalf("1-bit cut should gain progress, got %g", r.GainOneBit)
	}
}

func TestCaseStoreMajor(t *testing.T) {
	fig, pts, err := CaseStoreMajor()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || len(fig.Series) != 2 {
		t.Fatal("empty case study")
	}
	for _, pt := range pts {
		// Eq. 14's direction must agree with the cache simulation.
		if pt.StoreWins && pt.MeasuredRatio < 1 {
			t.Errorf("σ ratio %g: model says store-major wins, sim ratio %g", pt.SigmaRatio, pt.MeasuredRatio)
		}
		if !pt.StoreWins && pt.MeasuredRatio > 1.6 {
			t.Errorf("σ ratio %g: model says no win, sim ratio %g", pt.SigmaRatio, pt.MeasuredRatio)
		}
	}
	// slow NVM writes (σ_B = σ_load/10) must favour store-major strongly
	if pts[0].MeasuredRatio <= 1.5 {
		t.Errorf("STT-RAM-like case should strongly favour store-major, ratio %g", pts[0].MeasuredRatio)
	}
	// symmetric bandwidth: near parity
	var sym *StoreMajorPoint
	for i := range pts {
		if pts[i].SigmaRatio == 1 {
			sym = &pts[i]
		}
	}
	if sym == nil || sym.MeasuredRatio < 0.6 || sym.MeasuredRatio > 1.7 {
		t.Errorf("symmetric case should be near parity: %+v", sym)
	}
}

func TestDefaultFig11BaseValid(t *testing.T) {
	if err := DefaultFig11Base().Validate(); err != nil {
		t.Fatal(err)
	}
	var _ core.Params = DefaultFig11Base()
}
