package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"ehmodel/internal/stats"
)

// TestFig5PointsWithinBounds reproduces the §V-A validation claim: the
// measured progress of a fixed-interval multi-backup system falls
// within the EH model's τ_D ∈ [0, τ_B] bounds across backup intervals
// and active-period lengths.
func TestFig5PointsWithinBounds(t *testing.T) {
	fig, pts, err := Fig5(context.Background(), QuickFig5Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("%d points", len(pts))
	}
	within := 0
	for _, p := range pts {
		if p.Lo > p.Hi {
			t.Errorf("inverted bounds at τ_B=%g", p.TauBCycles)
		}
		if p.Within {
			within++
		}
	}
	if within < len(pts)-1 {
		t.Fatalf("only %d/%d points within model bounds", within, len(pts))
	}
	if len(fig.Series) != 6 { // measured + two bounds per duration
		t.Errorf("series = %d", len(fig.Series))
	}
	// bounds must widen with τ_B (variability grows, Fig. 4's takeaway)
	gapFirst := pts[0].Hi - pts[0].Lo
	gapLast := pts[3].Hi - pts[3].Lo
	if gapLast <= gapFirst {
		t.Errorf("bounds should widen with τ_B: %g vs %g", gapFirst, gapLast)
	}
}

// TestFig6ModelAccuracy reproduces the §V-A three-systems validation:
// the EH model predicts measured progress with small geometric-mean
// error (the paper reports 1.60% overall and ~7% for Mementos, whose
// dead-cycle behaviour deviates from the τ_B/2 assumption).
func TestFig6ModelAccuracy(t *testing.T) {
	fig, pts, err := Fig6(context.Background(), Fig6Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 18 { // 6 benchmarks × 3 systems
		t.Fatalf("%d points", len(pts))
	}
	perSystem := map[string][]float64{}
	for _, p := range pts {
		if p.Predicted < 0 || p.Predicted > 1 || math.IsNaN(p.Predicted) {
			t.Errorf("%s/%s: predicted %g out of range", p.Bench, p.System, p.Predicted)
		}
		perSystem[p.System] = append(perSystem[p.System], p.RelErr)
	}
	overall := stats.GeoMean(collect(pts))
	if overall > 0.10 {
		t.Fatalf("overall geomean error %.1f%% too large", overall*100)
	}
	// DINO and Hibernus match the model's assumptions closely.
	for _, sys := range []string{"dino", "hibernus"} {
		if g := stats.GeoMean(perSystem[sys]); g > 0.05 {
			t.Errorf("%s geomean error %.1f%%, want < 5%%", sys, g*100)
		}
	}
	// Mementos: the model should systematically under-predict (it
	// assumes τ_D = τ_B/2 dead cycles that Mementos mostly avoids).
	under := 0
	for _, p := range pts {
		if p.System == "mementos" && p.Predicted <= p.Measured {
			under++
		}
	}
	if under < 4 {
		t.Errorf("mementos should be under-predicted for most benchmarks, got %d/6", under)
	}
	if len(fig.Notes) < 4 {
		t.Error("missing per-system notes")
	}
}

func collect(pts []Fig6Point) []float64 {
	var out []float64
	for _, p := range pts {
		out = append(out, p.RelErr)
	}
	return out
}

// TestFig7Correlation reproduces the τ_B-optimality insight: benchmarks
// whose DINO task length lands closer to τ_B,opt achieve more progress
// (the paper highlights AR as both the closest and the fastest).
func TestFig7Correlation(t *testing.T) {
	fig, pts, err := Fig7(context.Background(), Fig6Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	var xs, ys []float64
	var bestSim, bestP *Fig7Point
	for i := range pts {
		p := &pts[i]
		if p.Similarity <= 0 || p.Similarity > 1 {
			t.Errorf("%s: similarity %g out of range", p.Bench, p.Similarity)
		}
		xs = append(xs, p.Similarity)
		ys = append(ys, p.Measured)
		if bestSim == nil || p.Similarity > bestSim.Similarity {
			bestSim = p
		}
		if bestP == nil || p.Measured > bestP.Measured {
			bestP = p
		}
	}
	r, err := stats.Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Fatalf("similarity-progress correlation %.3f, want strong positive", r)
	}
	// the paper's AR observation: most-optimal τ_B ⇒ highest progress
	if bestSim.Bench != bestP.Bench {
		t.Logf("note: best similarity (%s) and best progress (%s) differ", bestSim.Bench, bestP.Bench)
	}
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "Pearson") {
			found = true
		}
	}
	if !found {
		t.Error("missing correlation note")
	}
}

// TestFig8And9Characterization: τ_B and τ_D profiles exist per
// benchmark × trace, τ_D never exceeding the largest observed τ_B scale.
func TestFig8And9Characterization(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep is slow")
	}
	cfg := QuickCharacterizationConfig()
	fig8, fig9, runs, err := Fig8And9(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(cfg.Benches)*3 {
		t.Fatalf("%d runs", len(runs))
	}
	if len(fig8.Series) != 3 || len(fig9.Series) != 3 {
		t.Error("expected one series per trace")
	}
	byBench := map[string][]float64{}
	for _, r := range runs {
		if r.TauB.Mean <= 0 {
			t.Errorf("%s/%v: no backups", r.Bench, r.Trace)
		}
		byBench[r.Bench] = append(byBench[r.Bench], r.TauB.Mean)
	}
	// §V-B insight: lzfx's write-heavy hash table gives it the smallest
	// τ_B of the set.
	if stats.Mean(byBench["lzfx"]) >= stats.Mean(byBench["sha"]) {
		t.Errorf("lzfx τ_B (%g) should undercut sha (%g)",
			stats.Mean(byBench["lzfx"]), stats.Mean(byBench["sha"]))
	}
}

// TestFig10AlphaBScale: mean α_B across kernels sits in the paper's
// regime (it reports ≈0.16 B/cycle on its benchmark set).
func TestFig10AlphaBScale(t *testing.T) {
	if testing.Short() {
		t.Skip("α_B sweep is slow")
	}
	fig, runs, err := Fig10(context.Background(), QuickCharacterizationConfig())
	if err != nil {
		t.Fatal(err)
	}
	var all float64
	for _, r := range runs {
		all += r.AlphaB.Mean
	}
	mean := all / float64(len(runs))
	if mean <= 0.005 || mean > 1.5 {
		t.Fatalf("mean α_B %.3f B/cycle outside the plausible regime", mean)
	}
	if len(fig.Notes) < len(runs) {
		t.Error("missing benchmark notes")
	}
}

// TestCaseCircularBufferPlan reproduces §VI-B end to end: measured τ_B
// tracks (N−n+1)·τ_store, and measured progress peaks at the Eq. 15
// plan.
func TestCaseCircularBufferPlan(t *testing.T) {
	_, pts, plan, err := CaseCircularBuffer(context.Background(), CircularConfig{})
	if err != nil {
		t.Fatal(err)
	}
	best := pts[0]
	for _, p := range pts {
		if p.MeasuredTau <= 0 {
			t.Fatalf("N=%d: no backups", p.BufN)
		}
		// Eq. 15's postponement law: measured τ_B within 10% of
		// (N−n+1)·τ_store.
		if rel := math.Abs(p.MeasuredTau-p.PredictedTau) / p.PredictedTau; rel > 0.10 {
			t.Errorf("N=%d: τ_B %g vs predicted %g (%.0f%% off)",
				p.BufN, p.MeasuredTau, p.PredictedTau, rel*100)
		}
		if p.Progress > best.Progress {
			best = p
		}
	}
	// The progress-optimal N lands near the plan (the curve is flat
	// near its peak, so allow the neighbouring sweep points).
	if ratio := float64(best.BufN) / float64(plan.N); ratio < 0.6 || ratio > 1.8 {
		t.Fatalf("best N=%d far from planned N=%d", best.BufN, plan.N)
	}
	// Conventional layout (N = n) must be the worst configuration.
	if pts[0].Progress >= best.Progress {
		t.Error("N=n should not be optimal")
	}
}
