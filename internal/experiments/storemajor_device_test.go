package experiments

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
	"ehmodel/internal/workload"
)

// TestCaseStoreMajorDevice validates §VI-A end to end on the simulator:
// the loop order's effect on dirty-block backup traffic shows up as
// measured progress, in the direction Eq. 14 predicts.
func TestCaseStoreMajorDevice(t *testing.T) {
	fig, pts, err := CaseStoreMajorDevice(context.Background(), runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("%d points", len(pts))
	}
	byKey := map[[2]interface{}]StoreMajorDevicePoint{}
	for _, p := range pts {
		byKey[[2]interface{}{p.Order, p.SigmaRatio}] = p
	}
	lm := func(r float64) StoreMajorDevicePoint { return byKey[[2]interface{}{workload.LoadMajor, r}] }
	sm := func(r float64) StoreMajorDevicePoint { return byKey[[2]interface{}{workload.StoreMajor, r}] }

	// slow NVM writes: store-major must win decisively
	if sm(0.1).Progress <= lm(0.1).Progress*1.1 {
		t.Errorf("σ_B=σ_load/10: store-major %.4f should clearly beat load-major %.4f",
			sm(0.1).Progress, lm(0.1).Progress)
	}
	// symmetric bandwidth: near tie (within ~5%), the §VI-A takeaway
	// that surprises conventional intuition
	if gap := sm(1).Progress - lm(1).Progress; gap < 0 || gap > 0.05 {
		t.Errorf("σ_B=σ_load: expected a near tie, gap %.4f", gap)
	}
	// load-major's dirty payload must be several times store-major's at
	// every ratio — the β_block/β_store inflation
	for _, r := range []float64{0.1, 0.5, 1, 2} {
		if lm(r).DirtyBytes < 2*sm(r).DirtyBytes {
			t.Errorf("ratio %g: dirty payload %f vs %f lacks the block-granularity inflation",
				r, lm(r).DirtyBytes, sm(r).DirtyBytes)
		}
	}
	if len(fig.Series) != 2 || len(fig.Notes) == 0 {
		t.Error("figure incomplete")
	}
}

// TestTransposeOracle: both orders commit the identical checksum (the
// transpose result is order-independent).
func TestTransposeOracle(t *testing.T) {
	for _, order := range []workload.TransposeOrder{workload.LoadMajor, workload.StoreMajor} {
		prog, err := workload.Transpose(order, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		if prog.Name == "" {
			t.Error("unnamed program")
		}
	}
	if _, err := workload.Transpose(workload.LoadMajor, 15, 1); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if _, err := workload.Transpose(workload.LoadMajor, 16, 0); err == nil {
		t.Error("zero reps accepted")
	}
	if workload.LoadMajor.String() == workload.StoreMajor.String() {
		t.Error("order names collide")
	}
}
