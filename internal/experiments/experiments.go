// Package experiments contains one driver per table and figure of the
// paper's evaluation (Figs. 2–11) and per case study (§VI-A/B/C). Each
// driver returns a Figure — labelled series of points — that the
// ehfigs command renders and the root benchmark suite regenerates.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
	// Err is an optional symmetric error bar (SEM in the
	// characterization figures); 0 means none.
	Err float64
}

// Series is one labelled curve or bar group.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the reproduction of one paper figure.
type Figure struct {
	ID     string // e.g. "fig2"
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	Series []Series
	// Notes carries derived scalars worth reporting alongside the plot
	// (geomean error, correlation, crossover points).
	Notes []string
}

// AddNote appends a formatted note.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// WriteCSV emits the figure as series-labelled rows:
// series,x,y,err.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y", "err"}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Label,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
				strconv.FormatFloat(p.Err, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// find returns the series with the given label, or nil.
func (f *Figure) find(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}
