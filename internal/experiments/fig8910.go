package experiments

import (
	"context"

	"ehmodel/internal/characterize"
	"ehmodel/internal/runner"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// CharacterizationConfig scales the §V-B characterization figures.
type CharacterizationConfig struct {
	// Benches defaults to the MiBench kernel set.
	Benches []string
	// Clank carries the simulator configuration (capacitor sizing,
	// trace length, workload scale).
	Clank characterize.ClankConfig
	// Watchdogs is the Fig. 10 sweep (defaults to 250–3000 step 250).
	Watchdogs []uint64
	// Run configures the parallel sweep engine; it is copied into the
	// Clank configuration for the profile sweeps.
	Run runner.Options
}

func (c *CharacterizationConfig) setDefaults() {
	if c.Benches == nil {
		for _, w := range workload.MiBench() {
			c.Benches = append(c.Benches, w.Name)
		}
	}
	if c.Watchdogs == nil {
		c.Watchdogs = characterize.DefaultWatchdogs()
	}
}

// QuickCharacterizationConfig trims the sweep for tests and fast
// benches.
func QuickCharacterizationConfig() CharacterizationConfig {
	return CharacterizationConfig{
		Benches:   []string{"lzfx", "sha", "ds"},
		Watchdogs: []uint64{250, 1000, 3000},
	}
}

// Fig8And9 runs the Clank characterization across the three voltage
// traces and returns the average τ_B (Fig. 8) and τ_D (Fig. 9) figures,
// each with SEM error bars. Bars are indexed by benchmark on the x axis
// (one series per trace).
func Fig8And9(ctx context.Context, cfg CharacterizationConfig) (fig8, fig9 *Figure, runs []*characterize.ClankRun, err error) {
	cfg.setDefaults()
	cfg.Clank.Run = cfg.Run
	runs, errs, err := characterize.TauBProfile(ctx, cfg.Benches, cfg.Clank)
	if err != nil {
		return nil, nil, nil, err
	}
	fig8 = &Figure{
		ID:     "fig8",
		Title:  "Average τ_B per benchmark under Clank (Fig. 8)",
		XLabel: "benchmark index",
		YLabel: "τ_B (cycles)",
	}
	fig9 = &Figure{
		ID:     "fig9",
		Title:  "Average τ_D per benchmark under Clank (Fig. 9)",
		XLabel: "benchmark index",
		YLabel: "τ_D (cycles)",
	}
	for _, kind := range trace.Kinds() {
		s8 := Series{Label: kind.String()}
		s9 := Series{Label: kind.String()}
		for _, r := range runs {
			if r.Trace != kind {
				continue
			}
			x := float64(benchIndex(cfg.Benches, r.Bench))
			s8.Points = append(s8.Points, Point{X: x, Y: r.TauB.Mean, Err: r.TauB.SEM})
			s9.Points = append(s9.Points, Point{X: x, Y: r.TauD.Mean, Err: r.TauD.SEM})
		}
		fig8.Series = append(fig8.Series, s8)
		fig9.Series = append(fig9.Series, s9)
	}
	for i, b := range cfg.Benches {
		fig8.AddNote("x=%d: %s", i, b)
		fig9.AddNote("x=%d: %s", i, b)
	}
	if len(errs) > 0 {
		total := len(cfg.Benches) * len(trace.Kinds())
		fig8.AddNote("%s", errs.Summary(total))
		fig9.AddNote("%s", errs.Summary(total))
		return fig8, fig9, runs, errs
	}
	return fig8, fig9, runs, nil
}

func benchIndex(benches []string, name string) int {
	for i, b := range benches {
		if b == name {
			return i
		}
	}
	return -1
}

// Fig10 runs the mixed-volatility store-queue characterization of
// application state α_B across watchdog periods.
func Fig10(ctx context.Context, cfg CharacterizationConfig) (*Figure, []*characterize.AlphaBRun, error) {
	cfg.setDefaults()
	runs, errs, err := characterize.AlphaBProfile(ctx, cfg.Benches, cfg.Watchdogs, cfg.Clank.Scale, cfg.Run)
	if err != nil {
		return nil, nil, err
	}
	fig := &Figure{
		ID:     "fig10",
		Title:  "Average application state α_B per benchmark (Fig. 10)",
		XLabel: "benchmark index",
		YLabel: "α_B (bytes/cycle)",
	}
	s := Series{Label: "α_B"}
	var weighted float64
	for _, r := range runs {
		// x is the benchmark's input index, so dropped benchmarks leave
		// a gap instead of shifting every bar after them.
		x := float64(benchIndex(cfg.Benches, r.Bench))
		s.Points = append(s.Points, Point{X: x, Y: r.AlphaB.Mean, Err: r.AlphaB.SEM})
		fig.AddNote("x=%.0f: %s (α_B = %.3f B/cycle)", x, r.Bench, r.AlphaB.Mean)
		weighted += r.AlphaB.Mean
	}
	fig.Series = append(fig.Series, s)
	if len(runs) > 0 {
		fig.AddNote("mean α_B across benchmarks = %.3f B/cycle (paper reports ≈0.16)",
			weighted/float64(len(runs)))
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(cfg.Benches)))
		return fig, runs, errs
	}
	return fig, runs, nil
}
