package experiments

import (
	"context"
	"testing"

	"ehmodel/internal/runner"
)

func TestCapacitorSweep(t *testing.T) {
	fig, err := CapacitorSweep(context.Background(), "crc", nil, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meas, model := fig.Series[0], fig.Series[1]
	// progress must rise with the energy buffer (one-time costs
	// amortize) and the model must track the measurement closely
	for i := 1; i < len(meas.Points); i++ {
		if meas.Points[i].Y < meas.Points[i-1].Y-0.01 {
			t.Errorf("measured p fell as buffer grew at E=%g", meas.Points[i].X)
		}
	}
	if meas.Points[len(meas.Points)-1].Y <= meas.Points[0].Y {
		t.Error("no amortization benefit observed")
	}
	for i := range meas.Points {
		diff := meas.Points[i].Y - model.Points[i].Y
		if diff < -0.12 || diff > 0.12 {
			t.Errorf("E=%g: model %g vs measured %g", meas.Points[i].X, model.Points[i].Y, meas.Points[i].Y)
		}
	}
}

func TestCapacitorSweepUnknown(t *testing.T) {
	if _, err := CapacitorSweep(context.Background(), "nope", nil, runner.Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestNVMComparison(t *testing.T) {
	_, pts, err := NVMComparison(context.Background(), "crc", 2000, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d technologies", len(pts))
	}
	byName := map[string]NVMComparisonPoint{}
	for _, p := range pts {
		byName[p.NVM] = p
		if p.Measured <= 0 || p.Measured > 1 {
			t.Errorf("%s: measured %g out of range", p.NVM, p.Measured)
		}
	}
	// technology ordering: FRAM > STT-RAM > Flash for checkpoint-heavy
	// execution
	if !(byName["fram"].Measured > byName["sttram"].Measured &&
		byName["sttram"].Measured > byName["flash"].Measured) {
		t.Errorf("technology ordering violated: %+v", pts)
	}
	// the model must rank them identically
	if !(byName["fram"].Predicted > byName["sttram"].Predicted &&
		byName["sttram"].Predicted > byName["flash"].Predicted) {
		t.Errorf("model ranking diverges: %+v", pts)
	}
}

func TestNVMComparisonUnknown(t *testing.T) {
	if _, _, err := NVMComparison(context.Background(), "nope", 2000, runner.Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
