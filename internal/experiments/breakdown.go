package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// BreakdownRow is one runtime's energy split for a workload, as
// fractions of the total supplied energy — the Rodriguez-style
// time/energy breakdown the paper's Related Work surveys, produced by
// measurement rather than by per-system hand analysis.
type BreakdownRow struct {
	System   string
	Progress float64
	Dead     float64
	Backup   float64
	Restore  float64
	Idle     float64
	Residual float64 // charge left below V_off plus unspent final-period energy
}

// BreakdownComparison runs one workload under every runtime on the same
// budget and returns each one's measured energy split. The rows expose
// *why* a runtime wins: Hibernus trades idle for zero dead energy, DINO
// converts supply into backup traffic, Clank's register-only
// checkpoints barely register, and so on. Runtimes run in parallel
// through the sweep engine; a failed runtime leaves a gap at its index.
func BreakdownComparison(ctx context.Context, bench string, periodCycles float64, run runner.Options) (*Figure, []BreakdownRow, error) {
	if periodCycles == 0 {
		periodCycles = 20000
	}
	w, ok := workload.Get(bench)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	type entry struct {
		name string
		seg  asm.Segment
		make func() device.Strategy
	}
	entries := []entry{
		{"hibernus", asm.SRAM, func() device.Strategy { return strategy.NewHibernus() }},
		{"mementos", asm.SRAM, func() device.Strategy { return strategy.NewMementos() }},
		{"dino", asm.SRAM, func() device.Strategy { return strategy.NewDINO() }},
		{"chain", asm.SRAM, func() device.Strategy { return strategy.NewChain() }},
		{"clank", asm.FRAM, func() device.Strategy { return strategy.NewClank() }},
		{"ratchet", asm.FRAM, func() device.Strategy { return strategy.NewRatchet() }},
	}
	fig := &Figure{
		ID:     "breakdown",
		Title:  fmt.Sprintf("Measured energy breakdown per runtime (%s)", bench),
		XLabel: "runtime index",
		YLabel: "fraction of supplied energy",
	}
	plan := sweep.NewPlan("breakdown")
	for _, en := range entries {
		en := en
		plan.Add(fixedCell(
			"breakdown "+en.name+"/"+bench,
			periodCycles,
			func(ctx context.Context) (*asm.Program, device.Strategy, error) {
				prog, err := w.Build(workload.Options{Seg: en.seg, Scale: 4})
				if err != nil {
					return nil, nil, err
				}
				return prog, en.make(), nil
			}))
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()

	cats := []string{"progress", "dead", "backup", "restore", "idle"}
	series := make([]Series, len(cats))
	for i, c := range cats {
		series[i] = Series{Label: c}
	}
	var rows []BreakdownRow
	for i := range entries {
		if failed[i] {
			continue
		}
		bd := all[i].Result.Breakdown()
		total := bd.Supply + bd.Harvested
		row := BreakdownRow{
			System:   entries[i].name,
			Progress: bd.Progress / total,
			Dead:     bd.Dead / total,
			Backup:   bd.Backup / total,
			Restore:  bd.Restore / total,
			Idle:     bd.Idle / total,
		}
		row.Residual = 1 - row.Progress - row.Dead - row.Backup - row.Restore - row.Idle
		rows = append(rows, row)
		for j, v := range []float64{row.Progress, row.Dead, row.Backup, row.Restore, row.Idle} {
			series[j].Points = append(series[j].Points, Point{X: float64(i), Y: v})
		}
		fig.AddNote("x=%d: %-9s progress %.3f, dead %.3f, backup %.3f, restore %.3f, idle %.3f",
			i, row.System, row.Progress, row.Dead, row.Backup, row.Restore, row.Idle)
	}
	fig.Series = series
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(entries)))
		return fig, rows, errs
	}
	return fig, rows, nil
}
