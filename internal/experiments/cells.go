package experiments

import (
	"context"
	"fmt"
	"sort"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

// Every sweep driver in this package builds a sweep.Plan of cells and
// executes it through the memoizing executor (sweep.RunPlan). A cell's
// Build closure holds only the simulation's content — workload, strategy,
// supply — so identical configurations dedupe across figures and recall
// from the result store; model evaluation happens afterwards on the
// returned CellResults, with evaluation failures merged back into the
// sweep's error list so figures are assembled exactly as before.

// fixedConfig is the common fixed-per-period-supply configuration: a
// capacitor holding periodCycles ALU cycles of energy and a generous
// cycle ceiling. Environmental fields (RunTimeout, Interrupt) stay
// unset — the executor wires them, keeping them out of the cache key.
func fixedConfig(prog *asm.Program, pm energy.PowerModel, periodCycles float64, maxPeriods int) device.Config {
	e := periodCycles * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	return device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: maxPeriods, MaxCycles: 1 << 62,
	}
}

// fixedCell wraps the classic runFixed pattern as a sweep cell: build
// the program and strategy, supply periodCycles of energy per period,
// and require the workload to complete.
func fixedCell(label string, periodCycles float64, build func(ctx context.Context) (*asm.Program, device.Strategy, error)) sweep.Cell {
	var progName, sysName string
	return sweep.Cell{
		Label: label,
		Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
			prog, s, err := build(ctx)
			if err != nil {
				return device.Config{}, nil, err
			}
			progName, sysName = prog.Name, s.Name()
			return fixedConfig(prog, energy.MSP430Power(), periodCycles, 100000), s, nil
		},
		Verify: func(res *device.Result) error {
			if !res.Completed {
				return fmt.Errorf("experiments: %s/%s did not complete (%d periods)",
					sysName, progName, len(res.Periods))
			}
			return nil
		},
	}
}

// mergeEvalErrors folds post-run model-evaluation failures into the
// sweep's own error list, kept sorted by point index so summaries and
// figure notes are deterministic.
func mergeEvalErrors(errs runner.Errors, eval runner.Errors) runner.Errors {
	if len(eval) == 0 {
		return errs
	}
	errs = append(errs, eval...)
	sort.Slice(errs, func(i, j int) bool { return errs[i].Index < errs[j].Index })
	return errs
}
