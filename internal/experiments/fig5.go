package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/workload"
)

// Fig5Config parametrizes the §V-A hardware-validation reproduction: a
// fixed-interval multi-backup system sweeping the time between backups
// across several active-period lengths, with measured progress compared
// against the EH model's τ_D ∈ [0, τ_B] bounds.
type Fig5Config struct {
	// DurationsS are active-period lengths in seconds (paper: 0.5,
	// 0.375, 0.25, 0.125).
	DurationsS []float64
	// TauBsMS is the backup-interval sweep in milliseconds (paper: 0.18
	// to 7.1 ms).
	TauBsMS []float64
	// AlphaB is application state per cycle (paper: 0.1 B/cycle).
	AlphaB float64
	// PeriodsPerRun is how many full active periods each configuration
	// measures (default 4).
	PeriodsPerRun int
	// Run configures the parallel sweep engine (workers, per-run
	// deadline).
	Run runner.Options
}

func (c *Fig5Config) setDefaults() {
	if c.DurationsS == nil {
		c.DurationsS = []float64{0.5, 0.375, 0.25, 0.125}
	}
	if c.TauBsMS == nil {
		c.TauBsMS = []float64{0.18, 0.5, 1.0, 2.0, 3.0, 4.5, 5.5, 7.1}
	}
	if c.AlphaB == 0 {
		c.AlphaB = 0.1
	}
	if c.PeriodsPerRun == 0 {
		c.PeriodsPerRun = 4
	}
}

// QuickFig5Config is a scaled-down configuration (same shape, ~100×
// less simulated work) for tests and fast benches.
func QuickFig5Config() Fig5Config {
	return Fig5Config{
		DurationsS:    []float64{0.004, 0.002},
		TauBsMS:       []float64{0.18, 0.5, 1.0, 1.6},
		AlphaB:        0.1,
		PeriodsPerRun: 3,
	}
}

// Fig5Point is one measured configuration with its model bounds.
type Fig5Point struct {
	DurationS  float64
	TauBCycles float64
	Measured   float64
	Lo, Hi     float64 // EH-model worst/best-case progress
	Within     bool
}

// Fig5 runs the sweep on the device simulator — a plan of one group per
// active-period duration, one cell per τ_B, executed through the
// memoizing sweep layer — and evaluates the model bounds for each point.
// Failed points (deadline, panic, cancellation, invalid model
// parameters) are dropped from the figure with a note and reported
// through the returned error; the surviving points still populate the
// figure, merged in input order so the output is byte-identical at any
// worker count and any cache temperature.
func Fig5(ctx context.Context, cfg Fig5Config) (*Figure, []Fig5Point, error) {
	cfg.setDefaults()
	pm := energy.MSP430Power()
	fig := &Figure{
		ID:     "fig5",
		Title:  "Multi-backup validation: measured progress vs EH-model bounds (Fig. 5)",
		XLabel: "τ_B (cycles)",
		YLabel: "progress p",
	}
	type job struct{ dur, tauB float64 }
	var jobs []job
	plan := sweep.NewPlan("fig5")
	for _, dur := range cfg.DurationsS {
		eSupply := dur * pm.PowerW[energy.ClassALU] // period energy at ~1.05 mW
		g := plan.Group(fmt.Sprintf("duration=%gs", dur))
		for _, ms := range cfg.TauBsMS {
			j := job{dur: dur, tauB: ms * 1e-3 * pm.FreqHz}
			jobs = append(jobs, j)
			g.Add(sweep.Cell{
				Label: fmt.Sprintf("fig5 duration=%gs τ_B=%g cycles", j.dur, j.tauB),
				Build: fig5Build(cfg, pm, eSupply, j.tauB),
			})
		}
	}
	all, errs := sweep.RunPlan(ctx, plan, cfg.Run)
	failed := errs.FailedSet()

	var pts []Fig5Point
	var evalErrs runner.Errors
	within, idx := 0, 0
	for _, dur := range cfg.DurationsS {
		meas := Series{Label: fmt.Sprintf("measured %gs", dur)}
		lo := Series{Label: fmt.Sprintf("lower bound %gs", dur)}
		hi := Series{Label: fmt.Sprintf("upper bound %gs", dur)}
		for range cfg.TauBsMS {
			i := idx
			idx++
			if failed[i] {
				continue
			}
			pt, err := fig5Eval(cfg, pm, jobs[i].dur, jobs[i].tauB, &all[i])
			if err != nil {
				evalErrs = append(evalErrs, &runner.RunError{
					Index: i,
					Label: fmt.Sprintf("fig5 duration=%gs τ_B=%g cycles", jobs[i].dur, jobs[i].tauB),
					Err:   err,
				})
				continue
			}
			pts = append(pts, pt)
			if pt.Within {
				within++
			}
			meas.Points = append(meas.Points, Point{X: pt.TauBCycles, Y: pt.Measured})
			lo.Points = append(lo.Points, Point{X: pt.TauBCycles, Y: pt.Lo})
			hi.Points = append(hi.Points, Point{X: pt.TauBCycles, Y: pt.Hi})
		}
		fig.Series = append(fig.Series, meas, lo, hi)
	}
	errs = mergeEvalErrors(errs, evalErrs)
	fig.AddNote("%d/%d measured points fall within the EH-model bounds", within, len(pts))
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(jobs)))
		return fig, pts, errs
	}
	return fig, pts, nil
}

// fig5Build assembles one configuration's cell content: a counter
// workload sized so it cannot finish before the requested number of
// periods elapses, on a fixed supply of eSupply joules per period.
func fig5Build(cfg Fig5Config, pm energy.PowerModel, eSupply, tauB float64) func(context.Context) (device.Config, device.Strategy, error) {
	return func(ctx context.Context) (device.Config, device.Strategy, error) {
		totalCycles := float64(cfg.PeriodsPerRun+1) * eSupply / pm.EnergyPerCycle(energy.ClassALU)
		scale := int(totalCycles/20000) + 1
		w, _ := workload.Get("counter")
		prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: scale})
		if err != nil {
			return device.Config{}, nil, err
		}
		capC, vmax, von, voff := device.FixedSupplyConfig(eSupply)
		return device.Config{
			Prog:       prog,
			Power:      pm,
			CapC:       capC,
			CapVMax:    vmax,
			VOn:        von,
			VOff:       voff,
			MaxPeriods: cfg.PeriodsPerRun,
			MaxCycles:  1 << 62,
		}, strategy.NewTimer(uint64(tauB), cfg.AlphaB), nil
	}
}

// fig5Eval derives the EH-model bounds for one measured run.
func fig5Eval(cfg Fig5Config, pm energy.PowerModel, dur, tauB float64, cr *sweep.CellResult) (Fig5Point, error) {
	res := cr.Result
	params := core.Params{
		E:        res.MeanSupply(),
		Epsilon:  res.MeasuredEpsilon(),
		EpsilonC: 0,
		TauB:     tauB,
		SigmaB:   cr.Cfg.SigmaB,
		OmegaB:   pm.EnergyPerCycle(energy.ClassMem) / cr.Cfg.SigmaB,
		AB:       float64(cpu.ArchStateBytes),
		AlphaB:   cfg.AlphaB,
		SigmaR:   cr.Cfg.SigmaR,
		OmegaR:   pm.EnergyPerCycle(energy.ClassMem) / cr.Cfg.SigmaR,
		AR:       float64(cpu.ArchStateBytes) + cfg.AlphaB*tauB,
		AlphaR:   0,
	}
	if err := params.Validate(); err != nil {
		return Fig5Point{}, fmt.Errorf("experiments: fig5 model params: %w", err)
	}
	loP, hiP := params.ProgressBounds()
	m := res.MeasuredProgress()
	const slack = 0.02 // instruction-granularity and final-interval noise
	return Fig5Point{
		DurationS:  dur,
		TauBCycles: tauB,
		Measured:   m,
		Lo:         loP,
		Hi:         hiP,
		Within:     m >= loP-slack && m <= hiP+slack,
	}, nil
}
