package experiments

import (
	"bytes"
	"context"
	"testing"

	"ehmodel/internal/runner"
	"ehmodel/internal/sweep"
)

// TestFigureBytesIdenticalAcrossCacheTemps extends the determinism
// invariant to the memoization layer: a figure's CSV must be
// byte-identical with caching off, on a cold store, on a warm store,
// and at any worker count — the store may only change how fast an
// answer arrives, never the answer.
func TestFigureBytesIdenticalAcrossCacheTemps(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep is slow")
	}
	prev := sweep.Default()
	defer sweep.SetDefault(prev)

	fig5CSV := func(workers int) []byte {
		t.Helper()
		cfg := QuickFig5Config()
		cfg.Run = runner.Options{Workers: workers}
		fig, _, err := Fig5(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Reference: caching off, serial.
	sweep.SetDefault(sweep.NewExecutor(nil))
	ref := fig5CSV(1)

	// One executor across three runs: cold fill, then two warm replays
	// at different worker counts.
	exec := sweep.NewExecutor(sweep.NewMemStore(0))
	sweep.SetDefault(exec)
	cold := fig5CSV(4)
	st := exec.Stats()
	if st.Misses == 0 {
		t.Fatal("cold run hit a fresh store")
	}
	if st.Bypass != 0 {
		t.Fatalf("fig5 cells should all be hashable: %+v", st)
	}
	warm1 := fig5CSV(1)
	warm8 := fig5CSV(8)
	st = exec.Stats()
	if st.Hits == 0 {
		t.Fatal("warm runs never hit the store")
	}

	for name, got := range map[string][]byte{
		"cache=mem cold workers=4": cold,
		"cache=mem warm workers=1": warm1,
		"cache=mem warm workers=8": warm8,
	} {
		if !bytes.Equal(ref, got) {
			t.Errorf("%s: CSV differs from cache=off:\n%s\n---\n%s", name, ref, got)
		}
	}
}

// TestGenerateFiguresDedupesAcrossFigures: one `-fig all`-style batch
// funnels every driver through the shared default executor, so cells
// repeated across figures (and across runs) are answered from the
// store — the counters prove the dedup actually happened.
func TestGenerateFiguresDedupesAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep is slow")
	}
	prev := sweep.Default()
	defer sweep.SetDefault(prev)
	exec := sweep.NewExecutor(sweep.NewMemStore(0))
	sweep.SetDefault(exec)

	gen := func() {
		t.Helper()
		figs, failures := GenerateFigures(context.Background(), "5", true, runner.Options{})
		if len(failures) != 0 {
			t.Fatal(failures[0].Err)
		}
		if len(figs) != 1 {
			t.Fatalf("%d figures", len(figs))
		}
	}
	gen()
	st := exec.Stats()
	simulated := st.Misses
	if simulated == 0 {
		t.Fatal("no cells simulated")
	}
	gen()
	st = exec.Stats()
	if st.Misses != simulated {
		t.Fatalf("second identical batch re-simulated: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatal("second batch reported no hits")
	}
}
