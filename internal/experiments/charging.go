package experiments

import (
	"context"
	"fmt"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/runner"
	"ehmodel/internal/strategy"
	"ehmodel/internal/sweep"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// ChargingPoint is one harvest level's measured and predicted progress.
type ChargingPoint struct {
	EpsilonCOverEps float64 // measured ε_C/ε
	Measured        float64 // ε·τ_P / E (capacitor supply only)
	Predicted       float64 // Eq. 8 with the measured ε_C
}

// ChargingStudy validates the model's in-period charging terms (the
// ε_C appearances in Eqs. 2, 4, 7 and 8): a bench-style constant
// harvester tops the capacitor up while the device executes, so the
// per-period work exceeds what the capacitor alone could fund. Progress
// normalized to the capacitor supply E grows toward (and past) 1 as
// ε_C/ε rises — the divergence §III derives. Each point compares the
// measurement with Eq. 8 evaluated at the measured ε_C.
func ChargingStudy(ctx context.Context, run runner.Options) (*Figure, []ChargingPoint, error) {
	pm := energy.MSP430Power()
	const (
		periodCycles = 20000
		tauB         = 2000
		alphaB       = 0.1
	)
	e := periodCycles * pm.EnergyPerCycle(energy.ClassALU)

	fig := &Figure{
		ID:     "charging",
		Title:  "In-period charging validation: p vs ε_C/ε (Eq. 8's charging terms)",
		XLabel: "ε_C/ε",
		YLabel: "progress p = ε·τ_P/E",
	}
	// resistance sweep: ∞ (no harvester) down to near the sustain point
	rs := []float64{0, 400e3, 150e3, 80e3, 50e3, 35e3}
	plan := sweep.NewPlan("charging")
	for _, r := range rs {
		r := r
		plan.Add(sweep.Cell{
			Label: fmt.Sprintf("charging r=%g Ω", r),
			Build: func(ctx context.Context) (device.Config, device.Strategy, error) {
				w, _ := workload.Get("counter")
				prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 120})
				if err != nil {
					return device.Config{}, nil, err
				}
				cfg := device.Config{
					Prog: prog, Power: pm,
					MaxPeriods: 12, MaxCycles: 1 << 62,
				}
				cfg.CapC, cfg.CapVMax, cfg.VOn, cfg.VOff = device.FixedSupplyConfig(e)
				if r > 0 {
					src := trace.Constant(3.0, 1, 0.01)
					h, err := energy.NewHarvester(src, r, 0.7)
					if err != nil {
						return device.Config{}, nil, err
					}
					cfg.Harvester = h
				}
				return cfg, strategy.NewTimer(tauB, alphaB), nil
			},
		})
	}
	all, errs := sweep.RunPlan(ctx, plan, run)
	failed := errs.FailedSet()

	meas := Series{Label: "measured"}
	model := Series{Label: "EH model"}
	var pts []ChargingPoint
	var evalErrs runner.Errors
	for i, r := range rs {
		if failed[i] {
			continue
		}
		pt, err := chargingEval(pm, r, tauB, alphaB, &all[i])
		if err != nil {
			evalErrs = append(evalErrs, &runner.RunError{
				Index: i,
				Label: fmt.Sprintf("charging r=%g Ω", r),
				Err:   err,
			})
			continue
		}
		pts = append(pts, pt)
		meas.Points = append(meas.Points, Point{X: pt.EpsilonCOverEps, Y: pt.Measured})
		model.Points = append(model.Points, Point{X: pt.EpsilonCOverEps, Y: pt.Predicted})
	}
	errs = mergeEvalErrors(errs, evalErrs)
	fig.Series = append(fig.Series, meas, model)
	if len(pts) > 0 {
		last := pts[len(pts)-1]
		fig.AddNote("at ε_C/ε = %.2f, p = %.3f measured vs %.3f model — charging extends every period's work",
			last.EpsilonCOverEps, last.Measured, last.Predicted)
	}
	if len(errs) > 0 {
		fig.AddNote("%s", errs.Summary(len(rs)))
		return fig, pts, errs
	}
	return fig, pts, nil
}

// chargingEval aggregates one run's failure-terminated periods (full
// budgets only) and evaluates Eq. 8 at the measured ε_C.
func chargingEval(pm energy.PowerModel, r, tauB, alphaB float64, cr *sweep.CellResult) (ChargingPoint, error) {
	res := cr.Result
	var supply, progressE, harvested float64
	var activeCycles uint64
	for i := range res.Periods {
		if res.Completed && i == len(res.Periods)-1 {
			continue
		}
		p := &res.Periods[i]
		supply += p.SupplyE
		progressE += p.ProgressE
		harvested += p.HarvestedE
		activeCycles += p.ProgressCycles + p.DeadCycles + p.BackupCycles + p.RestoreCycles + p.IdleCycles
	}
	if supply == 0 || activeCycles == 0 {
		return ChargingPoint{}, fmt.Errorf("experiments: charging run too short (r=%g)", r)
	}
	epsC := harvested / float64(activeCycles)
	eps := res.MeasuredEpsilon()

	params := core.Params{
		E:        supply / float64(len(res.Periods)-boolInt(res.Completed)),
		Epsilon:  eps,
		EpsilonC: epsC,
		TauB:     tauB,
		SigmaB:   cr.Cfg.SigmaB,
		OmegaB:   pm.EnergyPerCycle(energy.ClassMem) / cr.Cfg.SigmaB,
		AB:       float64(cpu.ArchStateBytes),
		AlphaB:   alphaB,
		SigmaR:   cr.Cfg.SigmaR,
		OmegaR:   pm.EnergyPerCycle(energy.ClassMem) / cr.Cfg.SigmaR,
		AR:       float64(cpu.ArchStateBytes) + alphaB*tauB,
	}
	if err := params.Validate(); err != nil {
		return ChargingPoint{}, fmt.Errorf("experiments: charging params (r=%g): %w", r, err)
	}
	return ChargingPoint{
		EpsilonCOverEps: epsC / eps,
		Measured:        progressE / supply,
		Predicted:       params.Progress(),
	}, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
