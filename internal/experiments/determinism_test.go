package experiments

import (
	"bytes"
	"context"
	"testing"

	"ehmodel/internal/runner"
)

// TestFig5DeterministicAcrossWorkers: the sweep engine's load-bearing
// invariant — a seeded figure sweep produces byte-identical CSV output
// at any worker count, and repeat runs reproduce it exactly. Run under
// -race this also shakes out data races in the parallel drivers.
func TestFig5DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweep is slow")
	}
	csv := func(workers int) []byte {
		t.Helper()
		cfg := QuickFig5Config()
		cfg.Run = runner.Options{Workers: workers}
		fig, _, err := Fig5(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Fig5(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := fig.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.Bytes()
	}

	serial := csv(1)
	parallel := csv(8)
	again := csv(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("workers=1 and workers=8 CSVs differ:\n%s\n---\n%s", serial, parallel)
	}
	if !bytes.Equal(parallel, again) {
		t.Fatal("two workers=8 runs of the same seeded sweep differ")
	}
}
