// Package profiling wires the standard performance-inspection hooks
// into the CLIs: CPU and heap profiles written on exit, and an opt-in
// HTTP endpoint serving expvar counters and net/http/pprof handlers.
// Everything is off unless its flag is set, so the simulators pay
// nothing by default.
package profiling

import (
	_ "expvar" // registers /debug/vars on the default mux
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling options a CLI exposes.
type Flags struct {
	CPUProfile string
	MemProfile string
	PprofAddr  string
}

// Register installs the standard flag set (-cpuprofile, -memprofile,
// -pprof) on the default FlagSet.
func (f *Flags) Register() {
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&f.PprofAddr, "pprof", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
}

// Start begins CPU profiling and the debug HTTP server per the flags.
// The returned stop function finishes the CPU profile and writes the
// heap profile; call it exactly once, on every exit path (defer it
// right after Start succeeds).
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if f.PprofAddr != "" {
		// The expvar and net/http/pprof imports registered their
		// handlers on the default mux; serving it is all that is left.
		// The server lives for the process — there is nothing to tear
		// down gracefully on a CLI exit.
		go func() {
			if err := http.ListenAndServe(f.PprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: pprof endpoint:", err)
			}
		}()
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return fmt.Errorf("profiling: %w", err)
			}
			if err := mf.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
