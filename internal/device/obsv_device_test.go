package device_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"ehmodel/internal/device"
	"ehmodel/internal/obsv"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// traceRun executes the counter workload under Hibernus on one engine
// with a SliceSink attached and returns the captured events.
func traceRun(t *testing.T, eng device.Engine) []obsv.Event {
	t.Helper()
	w, ok := workload.Get("counter")
	if !ok {
		t.Fatal("counter workload missing")
	}
	prog, err := w.Build(workload.Options{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	sink := &obsv.SliceSink{}
	cfg := benchEquivCfg(prog, 60_000)
	cfg.Engine = eng
	cfg.Observe = sink
	d, err := device.New(cfg, strategy.NewHibernus())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("golden run did not complete")
	}
	return sink.Events
}

// filterDiagnostics drops engine-shape diagnostics (EvBatchHorizon) and
// normalizes the engine tag on EvRunBegin, leaving exactly the lifecycle
// stream both engines must agree on event for event.
func filterDiagnostics(evs []obsv.Event) []obsv.Event {
	out := make([]obsv.Event, 0, len(evs))
	for _, e := range evs {
		if e.Type.EngineDiagnostic() {
			continue
		}
		if e.Type == obsv.EvRunBegin {
			e.Arg = 0
		}
		out = append(out, e)
	}
	return out
}

// TestGoldenTraceHibernusCounter pins the exact lifecycle event sequence
// of the counter workload under Hibernus — the paper's single-backup
// narrative: power on, cold start, run until the comparator fires, save
// once, sleep into the brown-out, then restore next period, with a final
// commit at halt. Both engines must produce this sequence, and beyond
// the type sequence the full event payloads (cycle stamps, sim time,
// byte counts, energies) must agree event for event.
func TestGoldenTraceHibernusCounter(t *testing.T) {
	golden := strings.Fields(`
		run-begin
		power-on cold-start
		trigger checkpoint-begin checkpoint-commit sleep brown-out
		power-on restore
		trigger checkpoint-begin checkpoint-commit sleep brown-out
		power-on restore
		trigger checkpoint-begin checkpoint-commit sleep brown-out
		power-on restore
		checkpoint-begin checkpoint-commit halt
		run-end`)

	ref := filterDiagnostics(traceRun(t, device.EngineReference))
	bat := filterDiagnostics(traceRun(t, device.EngineBatched))

	if !reflect.DeepEqual(ref, bat) {
		n := len(ref)
		if len(bat) < n {
			n = len(bat)
		}
		for i := 0; i < n; i++ {
			if ref[i] != bat[i] {
				t.Fatalf("engines diverge at event %d:\nreference: %+v\nbatched:   %+v", i, ref[i], bat[i])
			}
		}
		t.Fatalf("engines emit different event counts: reference %d, batched %d", len(ref), len(bat))
	}

	got := make([]string, len(ref))
	for i, e := range ref {
		got[i] = e.Type.String()
	}
	if !reflect.DeepEqual(got, golden) {
		t.Fatalf("event sequence mismatch:\ngot:  %v\nwant: %v", got, golden)
	}

	// The trigger announced by Hibernus must be the threshold comparator.
	for _, e := range ref {
		if e.Type == obsv.EvTrigger && obsv.TriggerReason(e.Arg) != obsv.TrigThreshold {
			t.Fatalf("hibernus trigger reason = %v, want threshold", obsv.TriggerReason(e.Arg))
		}
	}
}

// TestDeadlineBoundaryParity checks that both engines report the same
// cycle number in a DeadlineError: the poll boundary where the credit
// counter crossed pollBatchCycles, not wherever the engine's batching
// happened to leave d.cycles.
func TestDeadlineBoundaryParity(t *testing.T) {
	w, ok := workload.Get("counter")
	if !ok {
		t.Fatal("counter workload missing")
	}
	prog, err := w.Build(workload.Options{Scale: 20})
	if err != nil {
		t.Fatal(err)
	}
	run := func(eng device.Engine) *device.DeadlineError {
		cfg := benchEquivCfg(prog, 600_000)
		cfg.Engine = eng
		cfg.RunTimeout = time.Nanosecond
		d, err := device.New(cfg, strategy.NewTimer(50_000, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		_, err = d.Run()
		var de *device.DeadlineError
		if !errors.As(err, &de) {
			t.Fatalf("engine %v: expected DeadlineError, got %v", eng, err)
		}
		return de
	}
	ref := run(device.EngineReference)
	bat := run(device.EngineBatched)
	if ref.Cycles != bat.Cycles || ref.Periods != bat.Periods {
		t.Fatalf("deadline position differs:\nreference: cycles=%d periods=%d\nbatched:   cycles=%d periods=%d",
			ref.Cycles, ref.Periods, bat.Cycles, bat.Periods)
	}
}
