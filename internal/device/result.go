package device

import "ehmodel/internal/stats"

// PeriodStats records where one active period's cycles and energy went —
// the measured counterpart of the EH model's Eq. 1 breakdown.
type PeriodStats struct {
	// SupplyE is the usable capacitor energy at power-on (the model's E).
	SupplyE float64
	// HarvestedE is energy harvested during the active period (ε_C·t).
	HarvestedE float64

	ProgressCycles uint64
	DeadCycles     uint64
	BackupCycles   uint64
	RestoreCycles  uint64
	IdleCycles     uint64

	ProgressE float64
	DeadE     float64
	BackupE   float64
	RestoreE  float64
	IdleE     float64

	Backups int
	// BackupIntervals are executed cycles between consecutive committed
	// backups (τ_B samples).
	BackupIntervals []uint64
	// AppBytes per committed backup (α_B·τ_B samples).
	AppBytes []int
	// PayloadBytes per committed backup (architectural + application).
	PayloadBytes []int
	// ChargeTimeS is wall-clock time spent recharging before this
	// period.
	ChargeTimeS float64
}

// FaultReport counts injected faults and the checkpoint protocol's
// recovery actions across one run. All fields are zero when no fault
// injector was attached.
type FaultReport struct {
	// PowerCuts is the number of scheduled supply faults delivered.
	PowerCuts int
	// InjectedTears counts backups the injector deliberately cut at a
	// chosen word; TornBackups additionally includes backups torn by a
	// supply failure (scheduled or organic) mid-write.
	InjectedTears int
	TornBackups   int
	// BitFlips is the total bits flipped in stored checkpoint words.
	BitFlips int
	// CRCRejections counts checkpoint slots the restore path rejected
	// after CRC validation failed.
	CRCRejections int
	// StaleRestores counts restores that fell back to the older slot;
	// ForcedStale counts the subset demanded by the injector rather
	// than caused by a rejected newest slot.
	StaleRestores int
	ForcedStale   int
	// ColdRestarts counts boots where both slots were unusable and the
	// device restarted from the program image despite having committed
	// checkpoints before.
	ColdRestarts int
}

// Any reports whether any fault or recovery event occurred.
func (f FaultReport) Any() bool { return f != FaultReport{} }

// Result aggregates a full intermittent run.
type Result struct {
	Strategy  string
	Program   string
	Completed bool // the program halted and its final commit landed
	Periods   []PeriodStats
	// Output is the committed output stream (SysOut values that reached
	// nonvolatile storage).
	Output []uint32
	// TotalCycles counts every consumed cycle across the run.
	TotalCycles uint64
	// TimeS is total simulated wall-clock time including recharging.
	TimeS float64
	// Faults reports injected faults and checkpoint recoveries.
	Faults FaultReport
}

// sum folds a per-period field.
func (r *Result) sum(f func(*PeriodStats) float64) float64 {
	t := 0.0
	for i := range r.Periods {
		t += f(&r.Periods[i])
	}
	return t
}

// MeasuredProgress returns the run's energy-based forward progress: the
// fraction of all supplied energy (capacitor + harvested) spent on
// committed execution. This is the measured p the paper's Figs. 5–7
// plot. For a completed run the final period contributes only the
// energy it actually consumed — the program ended there, so unspent
// charge is not "supply" in the model's sense.
func (r *Result) MeasuredProgress() float64 {
	var supply, prog float64
	for i := range r.Periods {
		p := &r.Periods[i]
		s := p.SupplyE + p.HarvestedE
		if r.Completed && i == len(r.Periods)-1 {
			if used := p.ProgressE + p.DeadE + p.BackupE + p.RestoreE + p.IdleE; used < s {
				s = used
			}
		}
		supply += s
		prog += p.ProgressE
	}
	if supply == 0 {
		return 0
	}
	return prog / supply
}

// MeasuredEpsilon returns the average energy per executed cycle across
// the run — the ε the EH model should be fed for this workload's
// instruction mix.
func (r *Result) MeasuredEpsilon() float64 {
	var e float64
	var c uint64
	for i := range r.Periods {
		p := &r.Periods[i]
		e += p.ProgressE + p.DeadE
		c += p.ProgressCycles + p.DeadCycles
	}
	if c == 0 {
		return 0
	}
	return e / float64(c)
}

// PayloadSamples returns total checkpoint bytes per committed backup.
func (r *Result) PayloadSamples() []float64 {
	var out []float64
	for i := range r.Periods {
		for _, v := range r.Periods[i].PayloadBytes {
			out = append(out, float64(v))
		}
	}
	return out
}

// MeanSupply returns the average per-period supply E (failure-terminated
// periods only, which are the full-budget ones).
func (r *Result) MeanSupply() float64 {
	var sum float64
	n := 0
	for i := range r.Periods {
		if r.Completed && i == len(r.Periods)-1 {
			continue
		}
		sum += r.Periods[i].SupplyE + r.Periods[i].HarvestedE
		n++
	}
	if n == 0 {
		if len(r.Periods) == 0 {
			return 0
		}
		// single-period completed run
		return r.Periods[0].SupplyE + r.Periods[0].HarvestedE
	}
	return sum / float64(n)
}

// CycleProgress returns the cycle-based progress fraction: committed
// execution cycles over all active cycles.
func (r *Result) CycleProgress() float64 {
	var active, prog uint64
	for i := range r.Periods {
		p := &r.Periods[i]
		active += p.ProgressCycles + p.DeadCycles + p.BackupCycles + p.RestoreCycles + p.IdleCycles
		prog += p.ProgressCycles
	}
	if active == 0 {
		return 0
	}
	return float64(prog) / float64(active)
}

// TauBSamples collects all backup-interval samples (exec cycles between
// committed backups) across periods.
func (r *Result) TauBSamples() []float64 {
	var out []float64
	for i := range r.Periods {
		for _, v := range r.Periods[i].BackupIntervals {
			out = append(out, float64(v))
		}
	}
	return out
}

// TauDSamples collects the dead-cycle count of each period that ended in
// a power failure.
func (r *Result) TauDSamples() []float64 {
	var out []float64
	for i := range r.Periods {
		// dead cycles only exist for failure-terminated periods; the
		// final (completed) period records zero dead cycles and is
		// excluded to avoid biasing τ_D downward.
		if r.Completed && i == len(r.Periods)-1 {
			continue
		}
		out = append(out, float64(r.Periods[i].DeadCycles))
	}
	return out
}

// AlphaBSamples returns per-backup application bytes divided by the
// backup interval — instantaneous α_B samples in bytes/cycle.
func (r *Result) AlphaBSamples() []float64 {
	var out []float64
	for i := range r.Periods {
		p := &r.Periods[i]
		for j, bytes := range p.AppBytes {
			if j < len(p.BackupIntervals) && p.BackupIntervals[j] > 0 {
				out = append(out, float64(bytes)/float64(p.BackupIntervals[j]))
			}
		}
	}
	return out
}

// MeanTauB returns the mean backup interval, or 0 with no samples.
func (r *Result) MeanTauB() float64 { return stats.Mean(r.TauBSamples()) }

// MeanTauD returns the mean dead cycles per failed period.
func (r *Result) MeanTauD() float64 { return stats.Mean(r.TauDSamples()) }

// Backups returns the total committed backups.
func (r *Result) Backups() int {
	n := 0
	for i := range r.Periods {
		n += r.Periods[i].Backups
	}
	return n
}

// Restores returns the number of periods that began with a checkpoint
// restore (every period after the first, in a completed run).
func (r *Result) Restores() int {
	n := 0
	for i := range r.Periods {
		if r.Periods[i].RestoreCycles > 0 {
			n++
		}
	}
	return n
}

// EnergyBreakdown sums the per-period energy split; handy for reports.
type EnergyBreakdown struct {
	Supply, Harvested, Progress, Dead, Backup, Restore, Idle float64
}

// Breakdown returns the run's total energy split.
func (r *Result) Breakdown() EnergyBreakdown {
	var b EnergyBreakdown
	for i := range r.Periods {
		p := &r.Periods[i]
		b.Supply += p.SupplyE
		b.Harvested += p.HarvestedE
		b.Progress += p.ProgressE
		b.Dead += p.DeadE
		b.Backup += p.BackupE
		b.Restore += p.RestoreE
		b.Idle += p.IdleE
	}
	return b
}
