package device

import (
	"errors"
	"math"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/trace"
)

// nullStrategy never backs up except at halt; used to exercise the
// device machinery in isolation.
type nullStrategy struct{}

func (nullStrategy) Name() string                                       { return "null" }
func (nullStrategy) Attach(*Device)                                     {}
func (nullStrategy) Boot(*Device) *Payload                              { return nil }
func (nullStrategy) PreStep(*Device, isa.Instr, AccessPreview) *Payload { return nil }
func (nullStrategy) PostStep(*Device, cpu.Step) *Payload                { return nil }
func (nullStrategy) FinalPayload(*Device) Payload                       { return Payload{ArchBytes: cpu.ArchStateBytes} }
func (nullStrategy) ReplaySafe() bool                                   { return true }
func (nullStrategy) Reset()                                             {}
func (nullStrategy) Horizon(*Device) uint64                             { return 1 }

// intervalStrategy backs up (registers only) every k executed cycles.
type intervalStrategy struct {
	nullStrategy
	k uint64
}

func (s intervalStrategy) Name() string { return "interval" }
func (s intervalStrategy) PostStep(d *Device, _ cpu.Step) *Payload {
	if d.ExecSinceBackup() >= s.k {
		return &Payload{ArchBytes: cpu.ArchStateBytes, SaveSRAM: true}
	}
	return nil
}
func (s intervalStrategy) FinalPayload(*Device) Payload {
	return Payload{ArchBytes: cpu.ArchStateBytes, SaveSRAM: true}
}

// loopProgram increments a memory counter n times and outputs it.
func loopProgram(t *testing.T, n uint32, seg asm.Segment) *asm.Program {
	t.Helper()
	b := asm.New("loop")
	b.Seg(seg)
	b.Word("count", 0)
	b.La(isa.R1, "count")
	b.Li(isa.R2, n)
	b.Li(isa.R3, 0)
	b.Label("top")
	b.Lw(isa.R4, isa.R1, 0)
	b.Addi(isa.R4, isa.R4, 1)
	b.Sw(isa.R4, isa.R1, 0)
	b.Addi(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "top")
	b.Lw(isa.R4, isa.R1, 0)
	b.Out(isa.R4)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fixedConfig(t *testing.T, prog *asm.Program, eJoules float64) Config {
	t.Helper()
	c, vmax, von, voff := FixedSupplyConfig(eJoules)
	return Config{
		Prog:    prog,
		Power:   energy.MSP430Power(),
		CapC:    c,
		CapVMax: vmax,
		VOn:     von,
		VOff:    voff,
	}
}

func TestConfigValidation(t *testing.T) {
	prog := loopProgram(t, 10, asm.SRAM)
	good := fixedConfig(t, prog, 1e-6)
	muts := map[string]func(*Config){
		"nil program":    func(c *Config) { c.Prog = nil },
		"bad power":      func(c *Config) { c.Power.FreqHz = 0 },
		"zero cap":       func(c *Config) { c.CapC = 0 },
		"von above vmax": func(c *Config) { c.VOn = c.CapVMax + 1 },
		"voff above von": func(c *Config) { c.VOff = c.VOn },
		"neg sigmaB":     func(c *Config) { c.SigmaB = -1 },
		"neg omega":      func(c *Config) { c.OmegaBExtra = -1 },
	}
	for name, mut := range muts {
		cfg := good
		mut(&cfg)
		if _, err := New(cfg, nullStrategy{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil strategy accepted")
	}
}

func TestContinuousEquivalence(t *testing.T) {
	prog := loopProgram(t, 500, asm.SRAM)
	out, cycles, err := RunContinuous(prog, 0, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 500 {
		t.Fatalf("continuous output %v", out)
	}
	if cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestAmpleEnergySinglePeriod: with a supply far larger than the
// program, the run completes in one active period with no dead energy.
func TestAmpleEnergySinglePeriod(t *testing.T) {
	prog := loopProgram(t, 200, asm.SRAM)
	d, err := New(fixedConfig(t, prog, 1.0), intervalStrategy{k: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if len(res.Periods) != 1 {
		t.Fatalf("expected 1 period, got %d", len(res.Periods))
	}
	if res.Periods[0].DeadCycles != 0 {
		t.Errorf("dead cycles %d in a completed single period", res.Periods[0].DeadCycles)
	}
	if got := res.Output; len(got) != 1 || got[0] != 200 {
		t.Fatalf("output %v", got)
	}
}

// TestIntermittentEquivalence: with a small supply the run spans many
// periods yet produces the identical output.
func TestIntermittentEquivalence(t *testing.T) {
	prog := loopProgram(t, 2000, asm.SRAM)
	// ~3000 cycles of energy per period
	e := 3000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, err := New(fixedConfig(t, prog, e), intervalStrategy{k: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run did not complete in %d periods", len(res.Periods))
	}
	if len(res.Periods) < 3 {
		t.Fatalf("expected many periods, got %d", len(res.Periods))
	}
	if len(res.Output) != 1 || res.Output[0] != 2000 {
		t.Fatalf("output %v, want [2000]", res.Output)
	}
	if res.Backups() == 0 || res.Restores() == 0 {
		t.Error("expected backups and restores")
	}
}

// TestNoBackupNoProgress: a strategy that never backs up re-executes the
// same prefix forever — the "perpetual restart loop" of the paper's
// abstract.
func TestNoBackupNoProgress(t *testing.T) {
	prog := loopProgram(t, 100000, asm.SRAM) // too big for one period
	e := 2000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	cfg := fixedConfig(t, prog, e)
	cfg.MaxPeriods = 20
	d, err := New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run should not complete")
	}
	if res.MeasuredProgress() != 0 {
		t.Errorf("no backups should mean zero progress, got %g", res.MeasuredProgress())
	}
	for _, p := range res.Periods {
		if p.ProgressCycles != 0 {
			t.Error("progress cycles without a backup")
		}
		if p.DeadCycles == 0 {
			t.Error("every period should be dead")
		}
	}
}

// TestEnergyConservation: per period, the accounted energy categories
// never exceed supply + harvested (they may undershoot because the
// period ends with residual charge below VOff).
func TestEnergyConservation(t *testing.T) {
	prog := loopProgram(t, 3000, asm.SRAM)
	e := 2500 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, err := New(fixedConfig(t, prog, e), intervalStrategy{k: 400})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Periods {
		used := p.ProgressE + p.DeadE + p.BackupE + p.RestoreE + p.IdleE
		budget := p.SupplyE + p.HarvestedE + 0.5*fixedConfig(t, prog, e).CapC*fixedConfig(t, prog, e).VOff*fixedConfig(t, prog, e).VOff
		if used > budget*(1+1e-9) {
			t.Errorf("period %d used %g > budget %g", i, used, budget)
		}
		if p.SupplyE <= 0 {
			t.Errorf("period %d has no supply", i)
		}
	}
}

// TestProgressFractionsSane: measured progress lies in (0, 1] for a
// completing intermittent run.
func TestProgressFractionsSane(t *testing.T) {
	prog := loopProgram(t, 2000, asm.SRAM)
	e := 3000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, _ := New(fixedConfig(t, prog, e), intervalStrategy{k: 500})
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.MeasuredProgress()
	if p <= 0 || p > 1 {
		t.Fatalf("measured progress %g out of range", p)
	}
	cp := res.CycleProgress()
	if cp <= 0 || cp > 1 {
		t.Fatalf("cycle progress %g out of range", cp)
	}
}

// TestSmallerTauBLessDead: more frequent backups reduce total dead
// energy.
func TestSmallerTauBLessDead(t *testing.T) {
	prog := loopProgram(t, 4000, asm.SRAM)
	e := 3000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	dead := func(k uint64) float64 {
		d, err := New(fixedConfig(t, prog, e), intervalStrategy{k: k})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("k=%d did not complete", k)
		}
		return res.Breakdown().Dead
	}
	if d1, d2 := dead(200), dead(2400); d1 >= d2 {
		t.Errorf("dead energy should shrink with frequent backups: %g vs %g", d1, d2)
	}
}

// TestBackupIntervalsTrackTauB: the interval strategy's measured τ_B
// matches its period within the granularity of instruction lengths.
func TestBackupIntervalsTrackTauB(t *testing.T) {
	prog := loopProgram(t, 5000, asm.SRAM)
	d, _ := New(fixedConfig(t, prog, 1.0), intervalStrategy{k: 700})
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	mean := res.MeanTauB()
	if math.Abs(mean-700) > 20 {
		t.Fatalf("mean τ_B %g, want ≈700", mean)
	}
}

// TestFixedSupplyConfig: usable energy between the thresholds equals the
// requested E.
func TestFixedSupplyConfig(t *testing.T) {
	c, vmax, von, voff := FixedSupplyConfig(1e-5)
	if von > vmax || voff >= von {
		t.Fatal("threshold ordering broken")
	}
	usable := 0.5 * c * (von*von - voff*voff)
	if math.Abs(usable-1e-5) > 1e-12 {
		t.Fatalf("usable %g, want 1e-5", usable)
	}
}

func TestPayloadBytes(t *testing.T) {
	p := Payload{ArchBytes: 72, AppBytes: 100}
	if p.Bytes() != 172 {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
}

// TestFRAMPersistsAcrossPeriods: nonvolatile data written before a power
// failure survives it.
func TestFRAMPersistsAcrossPeriods(t *testing.T) {
	prog := loopProgram(t, 3000, asm.FRAM) // counter lives in FRAM
	e := 2500 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, err := New(fixedConfig(t, prog, e), intervalStrategy{k: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Output) != 1 {
		t.Fatalf("run failed: completed=%v out=%v", res.Completed, res.Output)
	}
	// NOTE: with data in FRAM and a register checkpoint restoring the
	// loop, replay re-increments counter words written after the last
	// backup — unless the strategy is WAR-aware (Clank). The interval
	// strategy snapshots SRAM only, so the FRAM counter may legally
	// exceed N here; what must hold is that it is at least N.
	if res.Output[0] < 3000 {
		t.Fatalf("FRAM counter %d lost increments", res.Output[0])
	}
}

// TestNoProgressTypedError: a harvester that can never refill the
// capacitor to VOn must end the run with the typed ErrNoProgress, not an
// endless charge loop — and the error must carry the stall evidence.
func TestNoProgressTypedError(t *testing.T) {
	prog := loopProgram(t, 100000, asm.SRAM)
	e := 2000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	cfg := fixedConfig(t, prog, e)
	h, err := energy.NewHarvester(trace.Constant(0, 1, 1e-3), 1000, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Harvester = h
	d, err := New(cfg, intervalStrategy{k: 500})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("Run() = %v, want ErrNoProgress", err)
	}
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("error %T does not carry NoProgressError", err)
	}
	if np.TargetV != cfg.VOn {
		t.Errorf("TargetV = %g, want VOn %g", np.TargetV, cfg.VOn)
	}
	if np.StuckV >= cfg.VOn {
		t.Errorf("StuckV %g should sit below VOn %g", np.StuckV, cfg.VOn)
	}
	if np.Periods != 0 {
		t.Errorf("Periods = %d, want 0 for a supply dead from the start", np.Periods)
	}
}
