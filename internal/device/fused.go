package device

import (
	"fmt"
	"math"

	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

// Fused settle path.
//
// The equivalence contract forces both engines to replay the exact
// per-instruction energy sequence — one capacitor draw and one square
// root per instruction, in program order — so settlement is a serial
// floating-point dependency chain whose latency (subtract, divide,
// square root, two multiplies: ~40 cycles on current x86) rivals the
// cost of interpreting the instruction itself. Run as two separate
// loops (interpret a batch, then settle its records) the two costs
// add. Run as one loop they overlap: the chain occupies only a
// handful of floating-point units, and an out-of-order core executes
// the next instruction's integer interpreter work — decode switch,
// register file, memory model — entirely in the shadow of the
// previous instruction's divide/sqrt latency. The fusion is
// instruction-level parallelism, not threads, so it works on a
// single-CPU host and adds no synchronization, no deferred state and
// no extra gating: after every instruction the device state is as
// current as the reference engine's.
//
// Two algebraic rewrites shorten the chain; both are bit-identical to
// the reference expressions, not approximations:
//
//   - v = sqrt(e2/hc) with hc = 0.5*c replaces sqrt(2*e2/c).
//     Halving and doubling are exact in binary floating point, so
//     both forms perform one correctly-rounded division of the same
//     real value 2·e2/c and yield the same bits.
//   - eBefore is carried across instructions instead of recomputed.
//     The reference evaluates 0.5*c*v*v twice per step with the same
//     operands (once for pendingE, once as the next step's eBefore);
//     one evaluation reused is the same bits by determinism of the
//     operations.
func (d *Device) fusedBatch(code []isa.Instr, budget uint64) (cpu.Batch, error) {
	var (
		b  cpu.Batch
		st cpu.Step

		m     = d.mem
		stop  = d.stopSys
		hc    = 0.5 * d.cap.C
		voff  = d.cfg.VOff
		cp    = d.cfg.Power.CyclePeriod()
		v     = d.cap.Voltage()
		eb    = hc * v * v // 0.5*c*v*v, carried instruction to instruction
		timeS = d.timeS
		pend  = d.pendingE
		fram  uint64
	)
	var epc [energy.NumClasses]float64
	for cl := range epc {
		epc[cl] = d.cfg.Power.EnergyPerCycle(energy.InstrClass(cl))
	}

	writeback := func() {
		d.cap.SetVoltage(v)
		d.timeS = timeS
		d.pendingE = pend
		d.framWrites += fram
		d.cycles += b.Cycles
		d.sinceCommit += b.Cycles
		d.execSinceBkup += b.Cycles
	}

	for b.Cycles < budget && !d.core.Halted {
		if int(d.core.PC) >= len(code) {
			b.Stop = cpu.StopPCRange
			writeback()
			return b, nil
		}
		if err := d.core.StepInto(code, m, &st); err != nil {
			// The failing instruction mutated nothing; the settled
			// prefix leaves the device exactly where the reference
			// engine errors out.
			writeback()
			return b, err
		}
		if st.HasAccess && st.Access.Store && m.Region(st.Access.Addr) == mem.RegionFRAM {
			fram++
		}
		n := float64(st.Cycles)
		timeS += n * cp
		e2 := eb - n*epc[st.Class]
		if e2 <= 0 {
			d.framWrites += fram
			return b, errBatchOverrun()
		}
		v = math.Sqrt(e2 / hc)
		if v < voff {
			d.framWrites += fram
			return b, errBatchOverrun()
		}
		eNext := hc * v * v
		pend += eb - eNext
		eb = eNext
		b.Cycles += st.Cycles
		b.Steps++
		b.HasSys, b.Sys = st.HasSys, st.Sys
		if st.HasSys && (d.core.Halted || stop.Has(st.Sys)) {
			b.Stop = cpu.StopSys
			break
		}
	}
	writeback()
	return b, nil
}

// errBatchOverrun is the engine-bug report for a batch the budget
// should have protected dying mid-flight (see settleBatch).
func errBatchOverrun() error {
	return fmt.Errorf("device: internal: batch overran its energy horizon")
}
