package device

import (
	"sync/atomic"

	"ehmodel/internal/obsv"
)

// This file is the device's entire coupling to the observability layer.
// The contract (enforced by TestObservabilityDisabledCost against the
// committed BENCH_core.json baseline): with no tracer attached, every
// emission site is a single `d.obs != nil` check — no Event is built,
// nothing allocates, and the hot loops are otherwise untouched. Events
// fire only at lifecycle granularity: periods, boots, checkpoints,
// batches, faults — never per instruction.

// defaultObserver is the process-wide tracer provider Config.Observe
// falls back to, mirroring SetDefaultEngine: a CLI sets it once and
// every device built by sweep drivers many layers down picks it up.
var defaultObserver atomic.Pointer[func() obsv.Tracer]

// SetDefaultObserver installs a provider consulted by New whenever
// Config.Observe is nil. The provider is invoked once per device, so it
// can hand out per-device sinks (e.g. a Collector's loss-free
// per-worker Metrics, or a shared Chrome sink wrapped in WithTid).
// Pass nil to clear. Call it before any devices run.
func SetDefaultObserver(provider func() obsv.Tracer) {
	if provider == nil {
		defaultObserver.Store(nil)
		return
	}
	defaultObserver.Store(&provider)
}

// DefaultObserver invokes the process-wide provider once and returns
// its tracer (nil when no provider is installed). Layers that must
// combine the default sink with their own per-run tracer — the sweep
// executor attaching a span counter to a traced cell — resolve it here
// and pass the combination through Config.Observe, which preserves the
// provider's once-per-device contract.
func DefaultObserver() obsv.Tracer {
	if p := defaultObserver.Load(); p != nil {
		return (*p)()
	}
	return nil
}

// resolveObserver picks the device's tracer at construction time.
func resolveObserver(explicit obsv.Tracer) obsv.Tracer {
	if explicit != nil {
		return explicit
	}
	return DefaultObserver()
}

// emit sends one event stamped with the device's current position.
// Callers on hot paths must check d.obs != nil first so the disabled
// path never constructs an Event; Trace wraps the check for strategies.
func (d *Device) emit(t obsv.EventType, arg, arg2 uint64, f float64) {
	d.obs.Event(obsv.Event{
		Type:   t,
		Period: int32(len(d.result.Periods)),
		Cycles: d.cycles,
		TimeS:  d.timeS,
		Arg:    arg,
		Arg2:   arg2,
		F:      f,
	})
}

// Trace lets strategies emit lifecycle events (trigger reasons,
// WAR-buffer flushes) through the device's tracer. It is safe — and
// free beyond the nil checks — when observability is disabled, and on
// a nil receiver (strategy unit tests drive hooks without a device).
func (d *Device) Trace(t obsv.EventType, arg, arg2 uint64) {
	if d == nil || d.obs == nil {
		return
	}
	d.emit(t, arg, arg2, 0)
}

// Observing reports whether a tracer is attached, so strategies can
// skip any work needed only to build event arguments.
func (d *Device) Observing() bool { return d.obs != nil }
