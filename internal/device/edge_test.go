package device

import (
	"errors"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/trace"
)

// TestRestoreFailureLoop: when the restore cost alone exceeds the
// supply (here via pathologically slow restore bandwidth), the device
// retries forever without crashing and records the restore energy it
// wasted.
func TestRestoreFailureLoop(t *testing.T) {
	prog := loopProgram(t, 100000, asm.SRAM)
	e := 5000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	cfg := fixedConfig(t, prog, e)
	cfg.MaxPeriods = 10
	cfg.SigmaR = 0.001 // restoring one checkpoint costs ~76k cycles ≫ E
	d, err := New(cfg, intervalStrategy{k: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run cannot complete with impossible restores")
	}
	sawFailedRestore := false
	for i, p := range res.Periods {
		if i == 0 {
			continue // first period took the poison checkpoint
		}
		if p.RestoreCycles > 0 && p.ProgressCycles == 0 && p.DeadCycles == 0 {
			sawFailedRestore = true
			if p.RestoreE <= 0 {
				t.Error("failed restore should still burn energy")
			}
		}
	}
	if !sawFailedRestore {
		t.Fatal("expected periods consumed entirely by failed restores")
	}
}

// TestHarvesterTooWeak: a source that can never reach VOn aborts the
// run with a diagnostic instead of spinning forever.
func TestHarvesterTooWeak(t *testing.T) {
	prog := loopProgram(t, 100, asm.SRAM)
	cfg := fixedConfig(t, prog, 1e-6)
	src := trace.Constant(0.001, 1, 0.01) // microvolts: effectively dead
	h, err := energy.NewHarvester(src, 1e6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Harvester = h
	d, err := New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err == nil {
		t.Fatal("dead harvester should abort with an error")
	}
}

// TestMaxCyclesTruncation: the cycle budget stops the run cleanly with
// a valid (incomplete) result.
func TestMaxCyclesTruncation(t *testing.T) {
	prog := loopProgram(t, 1<<30, asm.SRAM)
	cfg := fixedConfig(t, prog, 1.0) // ample energy, endless program
	cfg.MaxCycles = 100000
	d, err := New(cfg, intervalStrategy{k: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("truncated run reported complete")
	}
	if res.TotalCycles < 100000 || res.TotalCycles > 110000 {
		t.Fatalf("total cycles %d not near the budget", res.TotalCycles)
	}
}

// TestRunawayProgramIsAnError: a program whose PC leaves the code image
// is a program bug, reported as an error rather than a power event.
func TestRunawayProgramIsAnError(t *testing.T) {
	b := asm.New("runaway")
	b.Nop() // falls off the end
	prog, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineReference, EngineBatched} {
		cfg := fixedConfig(t, prog, 1.0)
		cfg.Engine = eng
		d, err := New(cfg, nullStrategy{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = d.Run()
		if err == nil {
			t.Fatalf("%v: runaway PC should error", eng)
		}
		// The error is typed so sweep reports can classify it as a
		// program bug (see runner.Errors.Summary) and name the culprit.
		var perr *ProgramError
		if !errors.As(err, &perr) {
			t.Fatalf("%v: want *ProgramError, got %T: %v", eng, err, err)
		}
		if perr.Program != "runaway" {
			t.Errorf("%v: Program = %q, want %q", eng, perr.Program, "runaway")
		}
		if perr.PC != 1 {
			t.Errorf("%v: PC = %d, want 1 (one instruction past the single Nop)", eng, perr.PC)
		}
	}
}

// TestHarvestedChargingAccountsTime: recharging over a trace advances
// simulated wall-clock time and records per-period charge durations.
func TestHarvestedChargingAccountsTime(t *testing.T) {
	prog := loopProgram(t, 5000, asm.SRAM)
	e := 2000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	cfg := fixedConfig(t, prog, e)
	src := trace.Constant(2.0, 1, 0.01)
	h, err := energy.NewHarvester(src, 50000, 0.7) // weak but alive
	if err != nil {
		t.Fatal(err)
	}
	cfg.Harvester = h
	d, err := New(cfg, intervalStrategy{k: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete after %d periods", len(res.Periods))
	}
	if len(res.Periods) < 2 {
		t.Fatal("expected multiple periods")
	}
	charged := 0
	for i, p := range res.Periods {
		if i > 0 && p.ChargeTimeS > 0 {
			charged++
		}
		if p.HarvestedE < 0 {
			t.Error("negative harvest")
		}
	}
	if charged == 0 {
		t.Error("no recharge time recorded")
	}
	if res.TimeS <= 0 {
		t.Error("no simulated time")
	}
}

// TestIdleDrainsToDeath: a sleep-after-backup strategy leaves no dead
// cycles and burns the residual as idle.
type sleepStrategy struct{ nullStrategy }

func (sleepStrategy) PostStep(d *Device, _ cpu.Step) *Payload {
	if d.ExecSinceBackup() < 1000 {
		return nil
	}
	return &Payload{ArchBytes: cpu.ArchStateBytes, SaveSRAM: true, ThenSleep: true}
}
func (sleepStrategy) FinalPayload(*Device) Payload {
	return Payload{ArchBytes: cpu.ArchStateBytes, SaveSRAM: true}
}

func TestIdleDrainsToDeath(t *testing.T) {
	prog := loopProgram(t, 20000, asm.SRAM)
	e := 3000 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, err := New(fixedConfig(t, prog, e), sleepStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	for i, p := range res.Periods[:len(res.Periods)-1] {
		if p.Backups == 1 && p.IdleCycles == 0 {
			t.Errorf("period %d: backed up but no idle drain", i)
		}
		if p.Backups == 1 && p.DeadCycles != 0 {
			t.Errorf("period %d: dead cycles despite sleeping", i)
		}
	}
}
