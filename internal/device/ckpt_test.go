package device

import (
	"bytes"
	"errors"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
)

// stubInjector scripts fault decisions for white-box protocol tests.
// Zero value injects nothing — attaching it still switches the device to
// the word-granular commit path.
type stubInjector struct {
	// tears holds per-backup tear indices, consumed in order; exhausted
	// or absent entries mean no tear.
	tears   []int
	tearIdx int
	// flip, when set, replaces FlipBits.
	flip func(words []uint32) int
	// stale holds per-restore ForceStale answers, consumed in order.
	stale    []bool
	staleIdx int
	naive    bool
}

func (s *stubInjector) BeginRun() { s.tearIdx, s.staleIdx = 0, 0 }

func (s *stubInjector) PowerCutDue(uint64) bool { return false }

func (s *stubInjector) NextPowerCut() uint64 { return NoPowerCut }

func (s *stubInjector) TearBackup(int) int {
	if s.tearIdx >= len(s.tears) {
		return -1
	}
	k := s.tears[s.tearIdx]
	s.tearIdx++
	return k
}

func (s *stubInjector) FlipBits(words []uint32) int {
	if s.flip == nil {
		return 0
	}
	return s.flip(words)
}

func (s *stubInjector) ForceStale() bool {
	if s.staleIdx >= len(s.stale) {
		return false
	}
	v := s.stale[s.staleIdx]
	s.staleIdx++
	return v
}

func (s *stubInjector) NaiveCommit() bool { return s.naive }

func TestCheckpointRoundtrip(t *testing.T) {
	prog := loopProgram(t, 10, asm.SRAM)
	d, err := New(fixedConfig(t, prog, 1.0), nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	d.core.PC = 0x40
	d.core.SenseSeq = 7
	d.core.Halted = true
	for i := range d.core.Regs {
		d.core.Regs[i] = uint32(0x1000 + i)
	}
	d.framWrites = 1<<33 + 5
	if err := d.mem.StoreWord(mem.SRAMBase, 0x11223344); err != nil {
		t.Fatal(err)
	}

	p := Payload{ArchBytes: cpu.ArchStateBytes, AppBytes: d.SRAMFootprint(), SaveSRAM: true}
	words := d.encodeCheckpoint(p)
	if want := ckptHeaderWords + d.SRAMFootprint()/4; len(words) != want {
		t.Fatalf("image %d words, want %d", len(words), want)
	}
	ck, err := decodeCheckpoint(words, d.SRAMFootprint())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ck.payload != p {
		t.Errorf("payload %+v, want %+v", ck.payload, p)
	}
	if ck.core.PC != d.core.PC || ck.core.SenseSeq != d.core.SenseSeq || !ck.core.Halted {
		t.Errorf("core header %+v", ck.core)
	}
	if ck.core.Regs != d.core.Regs {
		t.Errorf("registers did not roundtrip")
	}
	if ck.framWrites != d.framWrites {
		t.Errorf("framWrites %d, want %d (64-bit split broken)", ck.framWrites, d.framWrites)
	}
	if want := d.mem.SnapshotSRAM()[:d.SRAMFootprint()]; !bytes.Equal(ck.sram, want) {
		t.Errorf("sram snapshot %x, want %x", ck.sram, want)
	}

	// Register-only image: no SRAM payload at all.
	words = d.encodeCheckpoint(Payload{ArchBytes: cpu.ArchStateBytes})
	if len(words) != ckptHeaderWords {
		t.Fatalf("register-only image %d words, want %d", len(words), ckptHeaderWords)
	}
	ck, err = decodeCheckpoint(words, d.SRAMFootprint())
	if err != nil {
		t.Fatalf("decode register-only: %v", err)
	}
	if ck.sram != nil || ck.payload.SaveSRAM {
		t.Error("register-only image decoded with an SRAM snapshot")
	}
}

func TestDecodeCheckpointRejectsCorruption(t *testing.T) {
	prog := loopProgram(t, 10, asm.SRAM)
	d, err := New(fixedConfig(t, prog, 1.0), nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	good := d.encodeCheckpoint(Payload{ArchBytes: cpu.ArchStateBytes, AppBytes: d.SRAMFootprint(), SaveSRAM: true})
	footprint := d.SRAMFootprint()

	cases := []struct {
		name string
		mut  func([]uint32) ([]uint32, int)
	}{
		{"truncated header", func(w []uint32) ([]uint32, int) { return w[:ckptHeaderWords-1], footprint }},
		{"unknown flags", func(w []uint32) ([]uint32, int) { w[0] |= 1 << 9; return w, footprint }},
		{"implausible arch bytes", func(w []uint32) ([]uint32, int) { w[1] = maxModeledBytes + 1; return w, footprint }},
		{"implausible app bytes", func(w []uint32) ([]uint32, int) { w[2] = maxModeledBytes + 1; return w, footprint }},
		{"sram size mismatch", func(w []uint32) ([]uint32, int) { return w, footprint + 4 }},
		{"sram bytes without flag", func(w []uint32) ([]uint32, int) { w[0] &^= ckptFlagSRAM; return w, footprint }},
		{"trailing garbage", func(w []uint32) ([]uint32, int) { return append(w, 0), footprint }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			img := append([]uint32(nil), good...)
			img, want := c.mut(img)
			if _, err := decodeCheckpoint(img, want); err == nil {
				t.Fatal("corrupt image decoded without error")
			}
		})
	}
}

// intermittentConfig is fixedConfig sized so the loop program spans many
// periods, with a fault injector attached.
func intermittentConfig(t *testing.T, prog *asm.Program, inj FaultInjector) Config {
	t.Helper()
	e := 2500 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	cfg := fixedConfig(t, prog, e)
	cfg.MaxPeriods = 10000
	cfg.Faults = inj
	return cfg
}

// TestTornBackupKeepsPreviousCommit: a backup torn mid-write must not
// destroy the previous checkpoint — the run completes with the correct
// output, restored from the slot the torn write never touched.
func TestTornBackupKeepsPreviousCommit(t *testing.T) {
	inj := &stubInjector{tears: []int{-1, 10, -1, 0}}
	prog := loopProgram(t, 2000, asm.SRAM)
	d, err := New(intermittentConfig(t, prog, inj), intervalStrategy{k: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if len(res.Output) != 1 || res.Output[0] != 2000 {
		t.Fatalf("output %v, want [2000]", res.Output)
	}
	if res.Faults.TornBackups != 2 || res.Faults.InjectedTears != 2 {
		t.Errorf("fault report %+v, want 2 torn backups from 2 injected tears", res.Faults)
	}
}

// TestBitFlipRejectionFallsBackToColdStart: when stored corruption takes
// out both slots, CRC validation rejects both and the device cold-starts
// rather than restoring garbage — and the rerun still ends correct.
func TestBitFlipRejectionFallsBackToColdStart(t *testing.T) {
	// FlipBits sees four arrays per restore (slot 0, record 0, slot 1,
	// record 1). Corrupt both slot payloads in the first restore that
	// actually has committed images — the period-1 boot sees empty slots.
	call, flipGroup := 0, -1
	inj := &stubInjector{}
	inj.flip = func(words []uint32) int {
		group := call / 4
		call++
		if len(words) < ckptHeaderWords {
			return 0
		}
		if flipGroup == -1 {
			flipGroup = group
		}
		if group == flipGroup {
			words[0] ^= 1 << 4
			return 1
		}
		return 0
	}
	prog := loopProgram(t, 2000, asm.SRAM)
	d, err := New(intermittentConfig(t, prog, inj), intervalStrategy{k: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Output) != 1 || res.Output[0] != 2000 {
		t.Fatalf("completed=%v output=%v, want [2000]", res.Completed, res.Output)
	}
	if res.Faults.BitFlips != 2 {
		t.Errorf("BitFlips = %d, want 2", res.Faults.BitFlips)
	}
	if res.Faults.CRCRejections != 2 {
		t.Errorf("CRCRejections = %d, want both corrupted slots rejected", res.Faults.CRCRejections)
	}
	if res.Faults.ColdRestarts < 1 {
		t.Error("expected a cold restart after losing both slots")
	}
}

// TestForcedStaleRestore: distrusting the newest slot restores the older
// commit; a replay-safe SRAM-snapshot strategy still converges to the
// right answer.
func TestForcedStaleRestore(t *testing.T) {
	inj := &stubInjector{stale: []bool{true}}
	prog := loopProgram(t, 2000, asm.SRAM)
	d, err := New(intermittentConfig(t, prog, inj), intervalStrategy{k: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Output) != 1 || res.Output[0] != 2000 {
		t.Fatalf("completed=%v output=%v, want [2000]", res.Completed, res.Output)
	}
	if res.Faults.ForcedStale != 1 || res.Faults.StaleRestores != 1 {
		t.Errorf("fault report %+v, want one forced stale restore", res.Faults)
	}
}

// TestStaleRestoreAfterFRAMStoresFailsStop: rolling execution back past
// a commit whose FRAM data stores already landed cannot be made
// crash-consistent; the device must detect it and abort with
// ErrUnrecoverable instead of silently replaying against future memory.
func TestStaleRestoreAfterFRAMStoresFailsStop(t *testing.T) {
	inj := &stubInjector{stale: []bool{true}}
	prog := loopProgram(t, 2000, asm.FRAM) // counter mutates FRAM
	d, err := New(intermittentConfig(t, prog, inj), intervalStrategy{k: 300})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Run() = %v, want ErrUnrecoverable", err)
	}
	var ue *UnrecoverableError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T does not carry UnrecoverableError", err)
	}
	if ue.LostStores == 0 {
		t.Error("unrecoverable error reports no lost FRAM stores")
	}
	if ue.RestoreSeq >= ue.NewestSeq {
		t.Errorf("restore seq %d should predate newest commit %d", ue.RestoreSeq, ue.NewestSeq)
	}
}

// jitStrategy models a runtime with no idempotent-replay guarantee
// (NVP's JIT threshold mode): restoring even the newest checkpoint is
// unsound once FRAM stores happened after it.
type jitStrategy struct{ intervalStrategy }

func (jitStrategy) ReplaySafe() bool { return false }

func TestReplayUnsafeStrategyFailsStop(t *testing.T) {
	inj := &stubInjector{} // no injected faults; natural brown-outs only
	prog := loopProgram(t, 2000, asm.FRAM)
	d, err := New(intermittentConfig(t, prog, inj), jitStrategy{intervalStrategy{k: 300}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Run() = %v, want ErrUnrecoverable for replay-unsafe runtime with FRAM stores", err)
	}
}

// outputProgram emits 0..n-1 on the output port, one word per loop
// iteration. Unlike a memory counter (whose loaded register re-writes
// and thereby heals torn state on replay), emitted outputs cannot be
// reconstructed: a restore that rolls the committed output log back
// while keeping a newer loop index leaves a permanent gap.
func outputProgram(t *testing.T, n uint32) *asm.Program {
	t.Helper()
	b := asm.New("outstream")
	b.Li(isa.R2, n)
	b.Li(isa.R3, 0)
	b.Label("top")
	b.Out(isa.R3)
	b.Addi(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "top")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNaiveCommitDiverges is the protocol-level proof that the naive
// single-slot commit is broken: a torn-write schedule the two-phase
// commit absorbs makes the naive device restore a half-overwritten image
// — a new loop index paired with a rolled-back output log — and lose
// crash consistency. It must NOT complete with the oracle's output.
func TestNaiveCommitDiverges(t *testing.T) {
	// Tear right after the register file word holding the loop index
	// (w8+3): the torn image carries the new index, the stale record
	// keeps the old committed output length.
	script := []int{-1, -1, 11, -1, 11, -1, 11}
	prog := outputProgram(t, 2000)
	want := make([]uint32, 2000)
	for i := range want {
		want[i] = uint32(i)
	}

	run := func(naive bool) (*Result, error) {
		inj := &stubInjector{tears: append([]int(nil), script...), naive: naive}
		d, err := New(intermittentConfig(t, prog, inj), intervalStrategy{k: 300})
		if err != nil {
			t.Fatal(err)
		}
		return d.Run()
	}

	res, err := run(false)
	if err != nil || !res.Completed || !equalWords(res.Output, want) {
		t.Fatalf("two-phase commit failed the torn schedule: err=%v completed=%v outlen=%d", err, res != nil && res.Completed, len(res.Output))
	}

	nres, nerr := run(true)
	if nerr == nil && nres.Faults.InjectedTears == 0 {
		t.Fatal("tear schedule never fired; the scenario proves nothing")
	}
	if nerr == nil && nres.Completed && equalWords(nres.Output, want) {
		t.Fatal("naive single-slot commit survived torn writes with the correct output — it should have diverged")
	}
	t.Logf("naive commit caught: err=%v", nerr)
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
