package device

import (
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/isa"
)

// cacheFlushStrategy checkpoints on a fixed interval, flushing the
// cache with a dirty-sized payload — a minimal cache-aware runtime for
// unit-testing the device's cache plumbing.
type cacheFlushStrategy struct {
	nullStrategy
	k uint64
}

func (s cacheFlushStrategy) PostStep(d *Device, _ cpu.Step) *Payload {
	if d.ExecSinceBackup() < s.k {
		return nil
	}
	return &Payload{
		ArchBytes:  cpu.ArchStateBytes,
		AppBytes:   d.Cache().DirtyBytes(),
		FlushCache: true,
	}
}
func (s cacheFlushStrategy) FinalPayload(d *Device) Payload {
	return Payload{ArchBytes: cpu.ArchStateBytes, AppBytes: d.Cache().DirtyBytes(), FlushCache: true}
}

// strideProgram walks an array of n words with the given word stride,
// storing to each location visited.
func strideProgram(t *testing.T, words, stride, iters int) *asm.Program {
	t.Helper()
	b := asm.New("stride")
	b.Seg(asm.FRAM)
	b.Space("arr", 4*words)
	b.La(isa.R1, "arr")
	b.Li(isa.R2, uint32(iters))
	b.Label("outer")
	b.Li(isa.R3, 0) // word index
	b.Label("walk")
	b.Slli(isa.TR, isa.R3, 2)
	b.Add(isa.TR, isa.TR, isa.R1)
	b.Sw(isa.R2, isa.TR, 0)
	b.Addi(isa.R3, isa.R3, int32(stride))
	b.Li(isa.R4, uint32(words))
	b.Blt(isa.R3, isa.R4, "walk")
	b.Addi(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "outer")
	b.Out(isa.R2)
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheConfiguredAndFlushed: with a cache, dirty payloads appear in
// backups and flushing clears them.
func TestCacheConfiguredAndFlushed(t *testing.T) {
	prog := strideProgram(t, 64, 1, 20)
	cfg := fixedConfig(t, prog, 1.0)
	cfg.CacheBlockSize = 32
	cfg.CacheSets = 16
	cfg.CacheWays = 2
	d, err := New(cfg, cacheFlushStrategy{k: 500})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cache() == nil {
		t.Fatal("cache not constructed")
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	sawDirty := false
	for _, p := range res.Periods {
		for _, ab := range p.AppBytes {
			if ab > 0 {
				sawDirty = true
			}
			// dirty payload cannot exceed cache capacity
			if ab > 32*16*2 {
				t.Errorf("dirty payload %d exceeds cache capacity", ab)
			}
		}
	}
	if !sawDirty {
		t.Fatal("no dirty payloads observed")
	}
}

// TestCacheStridePenalty: a sparse stride misses every block; a dense
// walk hits within blocks — the dense program must consume fewer cycles
// per store.
func TestCacheStridePenalty(t *testing.T) {
	run := func(stride int) uint64 {
		prog := strideProgram(t, 64, stride, 20)
		cfg := fixedConfig(t, prog, 1.0)
		cfg.CacheBlockSize = 32
		cfg.CacheSets = 2 // tiny: sparse strides thrash
		cfg.CacheWays = 1
		d, err := New(cfg, cacheFlushStrategy{k: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil || !res.Completed {
			t.Fatalf("stride %d failed: %v", stride, err)
		}
		return res.TotalCycles
	}
	dense := run(1)  // 64 stores per pass, 8 blocks
	sparse := run(8) // 8 stores per pass, 8 blocks — a miss per store
	// normalize per store executed: dense does 8× the stores
	densePerStore := float64(dense) / (64.0 / 1)
	sparsePerStore := float64(sparse) / (64.0 / 8)
	if sparsePerStore <= densePerStore {
		t.Fatalf("sparse stride should cost more per store: %.1f vs %.1f cycles",
			sparsePerStore, densePerStore)
	}
}

// TestNoCacheByDefault: the cache is opt-in.
func TestNoCacheByDefault(t *testing.T) {
	prog := strideProgram(t, 8, 1, 1)
	d, err := New(fixedConfig(t, prog, 1.0), nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cache() != nil {
		t.Fatal("cache constructed without configuration")
	}
}

// TestCacheInvalidConfig: bad cache geometry is rejected at New.
func TestCacheInvalidConfig(t *testing.T) {
	prog := strideProgram(t, 8, 1, 1)
	cfg := fixedConfig(t, prog, 1.0)
	cfg.CacheBlockSize = 3 // not a power of two
	if _, err := New(cfg, nullStrategy{}); err == nil {
		t.Fatal("invalid cache block size accepted")
	}
}
