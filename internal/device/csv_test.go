package device

import (
	"bytes"
	"strings"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/energy"
)

func TestWritePeriodsCSV(t *testing.T) {
	prog := loopProgram(t, 3000, asm.SRAM)
	e := 2500 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, err := New(fixedConfig(t, prog, e), intervalStrategy{k: 400})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WritePeriodsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Periods)+1 {
		t.Fatalf("%d lines for %d periods", len(lines), len(res.Periods))
	}
	if !strings.HasPrefix(lines[0], "period,supply_j") {
		t.Fatalf("header: %q", lines[0])
	}
	for i, l := range lines[1:] {
		if got := strings.Count(l, ","); got != strings.Count(lines[0], ",") {
			t.Fatalf("row %d has %d commas", i, got)
		}
	}
}
