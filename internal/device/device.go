// Package device simulates a complete intermittent computing platform:
// an EH32 core, SRAM/FRAM memory, a storage capacitor charged by an
// ambient harvester, and a pluggable backup/restore runtime strategy.
//
// The simulator's accounting mirrors the EH model's taxonomy exactly.
// Every active period's cycles and energy are split into forward
// progress, backups, restores, dead (uncommitted) execution and idle
// time, so measured results can be compared against the model's
// predictions parameter-for-parameter (the validation of §V).
package device

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
	"ehmodel/internal/obsv"
)

// AccessPreview describes the memory access the next instruction will
// make, computed before it executes so strategies like Clank can
// checkpoint ahead of idempotency-violating stores.
type AccessPreview struct {
	Valid bool
	Addr  uint32
	Size  uint8
	Store bool
}

// Payload describes what a backup (or the restore that mirrors it)
// saves.
type Payload struct {
	// ArchBytes is fixed architectural state: registers, PC, etc.
	ArchBytes int
	// AppBytes is application state accumulated since the last backup
	// (dirty data, SRAM snapshot, store-queue contents).
	AppBytes int
	// SaveSRAM snapshots volatile data memory contents so the restore
	// can reinstate them (full-memory checkpoint systems).
	SaveSRAM bool
	// ThenSleep puts the device into idle until the supply dies after
	// the backup commits — single-backup behaviour (Hibernus).
	ThenSleep bool
	// FlushCache marks the mixed-volatility cache clean when the
	// checkpoint commits: its dirty blocks are the AppBytes this backup
	// wrote to FRAM.
	FlushCache bool
}

// Bytes is the total checkpoint size.
func (p Payload) Bytes() int { return p.ArchBytes + p.AppBytes }

// Strategy is a backup/restore runtime policy. The device consults it
// around every instruction; the strategy requests backups by returning a
// non-nil Payload.
type Strategy interface {
	// Name identifies the strategy in results and logs.
	Name() string
	// Attach is called once before the run with the fully constructed
	// device, letting the strategy derive thresholds from its config.
	Attach(d *Device)
	// Boot is called at every power-on after state has been restored
	// (or cold-started). Strategies may request an immediate backup by
	// returning a payload (e.g. Clank checkpoints at boot).
	Boot(d *Device) *Payload
	// PreStep may request a backup before the given instruction
	// executes; acc previews its memory access.
	PreStep(d *Device, in isa.Instr, acc AccessPreview) *Payload
	// PostStep observes the executed instruction and may request a
	// backup after it (checkpoint sites, task ends, timers).
	PostStep(d *Device, st cpu.Step) *Payload
	// FinalPayload is the backup taken when the program halts, which
	// commits the remaining output.
	FinalPayload(d *Device) Payload
	// Horizon is the batched engine's planning hint: the strategy
	// promises that, starting from the current device state, it will not
	// request a backup for at least the returned number of executed
	// cycles — except at a SYS code it declared via SysObserver, where
	// the engine ends the batch and calls PostStep anyway. Returning
	// HorizonInfinite means "never on a cycle count" (site- or
	// SYS-driven strategies); returning 1 opts out of batching entirely
	// and keeps the exact per-step PreStep/PostStep protocol.
	//
	// The contract a Horizon > 1 buys into:
	//   - PreStep must return nil for every instruction in the window
	//     (the engine does not call it inside a batch);
	//   - PostStep is called once per batch with a synthesized Step
	//     whose Cycles is the whole batch's total and whose HasSys/Sys
	//     describe only the final instruction, so PostStep may read
	//     Cycles only as an amount to accumulate, never as "one
	//     instruction" — and must fire exactly when the per-step engine
	//     would (the engine ends a batch precisely at the horizon, so a
	//     cycle-counted trigger crosses on the same instruction);
	//   - PostStep is not called for a batch that ends in a halt (the
	//     per-step engine never calls it on the halt instruction
	//     either), so all volatile strategy state must be rebuilt by
	//     Boot/Reset rather than carried across a halt attempt.
	Horizon(d *Device) uint64
	// ReplaySafe reports whether the runtime guarantees that re-executing
	// from its last committed checkpoint stays crash-consistent even when
	// stores to nonvolatile data happened since — via idempotency
	// tracking (Clank, Ratchet) or a one-instruction replay window
	// (every-cycle NVP). Just-in-time runtimes that rely on a voltage
	// warning before death (threshold NVP) must return false: an unwarned
	// failure after uncheckpointed FRAM stores leaves no consistent state
	// to recover, and the restore path fail-stops with ErrUnrecoverable
	// instead of silently replaying. Runtimes that keep all mutable data
	// in checkpointed SRAM are unaffected either way.
	ReplaySafe() bool
	// Reset is called on power failure: all volatile tracking state
	// (buffers, timers) is lost.
	Reset()
}

// HorizonInfinite is the Strategy.Horizon result meaning "no
// cycle-counted backup trigger exists": the strategy only ever fires at
// declared SYS sites, or is disarmed.
const HorizonInfinite = ^uint64(0)

// InputProtector is optional Strategy metadata: a runtime that claims
// its protocol keeps committed input observations replay-safe (no
// committed SENSE observation duplicates one an earlier commit already
// persisted) implements it and returns true. The correctness oracle
// (internal/faults) cross-checks the claim — a claimed-protected
// runtime caught committing a replayed input is flagged with the claim
// noted, so broken metadata cannot hide a violation.
type InputProtector interface {
	InputsProtected() bool
}

// NaiveCommitter is optional Strategy metadata: a deliberately broken
// runtime variant (the auditor's known-bad target) declares that its
// commit protocol is the naive single-slot, unvalidated commit by
// returning true. Under fault injection the device then downgrades the
// checkpoint machinery exactly as the injector's own NaiveCommit mode
// does; without an injector attached behaviour is unchanged, so the
// broken variant stays bit-identical to its honest twin on clean power.
type NaiveCommitter interface {
	NaiveCommit() bool
}

// CacheSizer is optional Strategy metadata: a strategy whose memory
// model requires the mixed-volatility cache (CacheVolatile) declares
// the block size it needs. When the Config does not configure a cache,
// device.New applies the strategy's block size with the default
// geometry, so catalog-driven harnesses (audit, campaign, integration
// matrices) exercise cache-dependent runtimes without per-strategy
// Config plumbing.
type CacheSizer interface {
	CacheBlockSize() int
}

// CacheKeyer is optional Strategy metadata for the memoization layer
// (internal/sweep): a strategy that can describe every parameter
// affecting its behaviour as a stable string implements it, making its
// runs content-addressable in the result store. The returned key must
// read the live field values (drivers mutate parameters after
// construction) and must cover everything that could change a Result —
// two strategy instances with equal Name() and equal CacheKey() must
// produce bit-identical simulations. Returning "" opts this instance
// out (e.g. a wrapper holding run-specific state the driver reads back),
// and its cells bypass the store. Strategies without the interface
// bypass too.
type CacheKeyer interface {
	CacheKey() string
}

// RegionScheme says how a runtime delimits its atomic regions — the
// intervals between commit points whose worst-case energy the static
// WCEC verifier (internal/analyze) bounds. A verifier verdict is only
// meaningful for a runtime whose regions match the verdict's mode, so
// preflights key their refusals on this introspection.
type RegionScheme int

const (
	// RegionDynamic: commit points are chosen at runtime (voltage
	// thresholds, watchdogs, idempotency tracking) and do not correspond
	// to any static region table. Static checkpoint-mode verdicts are
	// advisory at best for these runtimes.
	RegionDynamic RegionScheme = iota
	// RegionCheckpointSites: commits happen only at the program's
	// checkpoint-site SYS instructions (analyze.DefaultBoundaries) — the
	// WCEC verifier's checkpoint mode.
	RegionCheckpointSites
	// RegionTaskBoundaries: commits happen only at the static task
	// boundaries of analyze.Tasks — the WCEC verifier's task mode.
	RegionTaskBoundaries
)

func (s RegionScheme) String() string {
	switch s {
	case RegionDynamic:
		return "dynamic"
	case RegionCheckpointSites:
		return "checkpoint-sites"
	case RegionTaskBoundaries:
		return "task-boundaries"
	}
	return fmt.Sprintf("RegionScheme(%d)", int(s))
}

// RegionObserver is optional Strategy metadata: a runtime whose commit
// points coincide with a static region scheme declares it, which lets
// the WCEC preflight (ehsim -wcec-check) refuse statically-infeasible
// configurations before simulating them. Strategies without it are
// treated as RegionDynamic.
type RegionObserver interface {
	Regions() RegionScheme
}

// SysObserver is the optional companion to Strategy.Horizon: a strategy
// whose PostStep reacts to specific SYS codes (checkpoint sites, task
// boundaries) declares them so the batched engine ends a batch — and
// delivers a PostStep — exactly there. Strategies with Horizon > 1 that
// do not implement SysObserver are conservatively treated as observing
// every SYS code, which keeps them correct at the price of a batch
// boundary per SYS instruction.
type SysObserver interface {
	ObservedSys() isa.SysMask
}

// Engine selects the active-phase execution loop.
type Engine int

const (
	// EngineDefault (the zero value) resolves to the process-wide
	// default — batched, unless a CLI overrode it with
	// SetDefaultEngine. Sweep drivers that build Configs internally
	// inherit the flag without threading it through every layer.
	EngineDefault Engine = iota
	// EngineBatched runs the event-horizon engine: instructions execute
	// in batches bounded by the next event (power death, strategy
	// trigger, scheduled fault, poll chunk) and accounting settles once
	// per batch by replaying the per-step energy sequence bit for bit.
	EngineBatched
	// EngineReference runs the original per-instruction loop. Results
	// are byte-identical to EngineBatched (the equivalence oracle test
	// proves it); keep it as the trust anchor and for A/B timing.
	EngineReference
)

func (e Engine) String() string {
	switch e {
	case EngineDefault:
		return "default"
	case EngineBatched:
		return "batched"
	case EngineReference:
		return "reference"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a CLI flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "default":
		return EngineDefault, nil
	case "batched":
		return EngineBatched, nil
	case "reference":
		return EngineReference, nil
	}
	return EngineDefault, fmt.Errorf("device: unknown engine %q (want batched or reference)", s)
}

// defaultEngine is what EngineDefault resolves to; batched unless a CLI
// overrides it once at startup.
var defaultEngine atomic.Int32

// SetDefaultEngine sets the engine EngineDefault resolves to. Call it
// once, before any devices run — it exists so a single -engine flag can
// steer sweep drivers that assemble their Configs many layers down.
func SetDefaultEngine(e Engine) {
	defaultEngine.Store(int32(e))
}

// Resolved returns the engine a run with this value would actually use:
// EngineDefault follows the process-wide default (batched unless
// SetDefaultEngine overrode it). The memoization layer keys cells on the
// resolved engine so "default" never aliases two different engines in
// the store.
func (e Engine) Resolved() Engine { return e.resolve() }

func (e Engine) resolve() Engine {
	if e != EngineDefault {
		return e
	}
	if d := Engine(defaultEngine.Load()); d != EngineDefault {
		return d
	}
	return EngineBatched
}

// Config assembles a device.
type Config struct {
	Prog *asm.Program

	// Engine picks the active-phase loop; the zero value follows the
	// process default (batched). See EngineBatched/EngineReference.
	Engine Engine

	SRAMSize int // bytes; default 8 KiB
	FRAMSize int // bytes; default 256 KiB

	Power energy.PowerModel

	// Capacitor and thresholds. The device begins executing at VOn and
	// browns out at VOff (Fig. 1's minimum threshold behaviour).
	CapC    float64 // farads
	CapVMax float64
	VOn     float64
	VOff    float64

	// Harvester charges the capacitor; nil models a bench supply that
	// recharges instantly between fixed-energy active periods.
	Harvester *energy.Harvester

	// NVM checkpoint bandwidths in bytes/cycle (σ_B, σ_R of Table I).
	SigmaB float64
	SigmaR float64
	// Extra energy per checkpointed byte beyond the memory-class cycle
	// energy (models expensive NVM writes, Ω_B/Ω_R adjustments).
	OmegaBExtra float64
	OmegaRExtra float64

	// Mixed-volatility cache (§VI-A): when CacheBlockSize > 0, data
	// accesses run through a volatile writeback cache in front of FRAM.
	// Misses pay a block-fill penalty at σ_R and dirty evictions a
	// writeback at σ_B; the cache's dirty blocks are the backup payload
	// cache-aware strategies flush at checkpoints. The cache is a
	// timing/energy model — architectural data still lives in the
	// memory system — and is invalidated on every power failure.
	CacheBlockSize int
	CacheSets      int
	CacheWays      int

	// Run limits.
	MaxCycles  uint64 // total consumed cycles; default 500M
	MaxPeriods int    // default 100k

	// Faults, when non-nil, attacks the run: scheduled supply cuts, torn
	// checkpoint writes, bit flips in stored checkpoints and forced
	// stale restores (see internal/faults). Attaching an injector also
	// switches backup/restore to word-granular accounting that charges
	// the commit-record transfers to τ_B/τ_R; with a nil injector the
	// accounting is bit-identical to the assumed-atomic simulator.
	Faults FaultInjector

	// RunTimeout is a wall-clock budget for one Run call, enforced by a
	// coarse cycle-batch check so a runaway kernel or pathological
	// harvester configuration cannot wedge a sweep. Expiry aborts the
	// run with a *DeadlineError wrapping ErrDeadlineExceeded. Zero
	// means no deadline. The check never touches simulation state, so
	// results are unaffected unless the deadline actually fires.
	RunTimeout time.Duration

	// Interrupt, when non-nil, is polled on the same coarse batch
	// schedule as RunTimeout; a non-nil return aborts the run with that
	// error. The parallel sweep engine (internal/runner) wires context
	// cancellation through this hook.
	Interrupt func() error

	// Observe receives the run's lifecycle events (internal/obsv). Nil
	// falls back to the process-wide SetDefaultObserver provider, and
	// when that is unset too, observability is disabled at the cost of
	// a nil check per emission site — the engine benchmark guard pins
	// that path at zero overhead. A device-private tracer may assume
	// single-goroutine delivery.
	Observe obsv.Tracer

	// DetectLivelock enables the exact-repeat livelock diagnosis: on a
	// bench supply (nil Harvester) with no fault injector, a full charge
	// that commits nothing, leaves no nonvolatile side effects, and dies
	// at the same PC with the same uncommitted cycle count as the charge
	// before it will repeat identically forever; Run then fail-stops
	// with a *NoProgressError (Livelock=true) naming the region entry
	// instead of burning MaxPeriods. Ignored under a harvester or an
	// injector, where consecutive periods legitimately differ.
	DetectLivelock bool

	// Record, when non-nil, logs the run's observation sequence (input
	// reads, committed outputs, checkpoint/restore lineage) for the
	// formal correctness oracle (internal/faults). Attaching a recorder
	// forces SysSense into the batch-stop mask and disables the fused
	// settle path so every input read gets an exact per-instruction
	// timestamp; results are unchanged (see obslog.go).
	Record *ObsLog
}

func (c *Config) setDefaults() {
	if c.SRAMSize == 0 {
		c.SRAMSize = 8 * 1024
	}
	if c.FRAMSize == 0 {
		c.FRAMSize = 256 * 1024
	}
	if c.SigmaB == 0 {
		c.SigmaB = 2 // FRAM word per two cycles (§III)
	}
	if c.SigmaR == 0 {
		c.SigmaR = 2
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 500_000_000
	}
	if c.MaxPeriods == 0 {
		c.MaxPeriods = 100_000
	}
}

// WithDefaults returns the config exactly as a device built from it
// reports via Cfg(): zero fields filled with their defaults and the
// strategy's CacheSizer block size applied. Memoization layers use it to
// reproduce the defaulted config for a cache hit without constructing a
// device, and to hash equivalent configs identically however they were
// spelled.
func (c Config) WithDefaults(s Strategy) Config {
	c.setDefaults()
	if c.CacheBlockSize == 0 && s != nil {
		if cs, ok := s.(CacheSizer); ok {
			c.CacheBlockSize = cs.CacheBlockSize()
		}
	}
	return c
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Prog == nil || len(c.Prog.Code) == 0 {
		return fmt.Errorf("device: config needs a program")
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.CapC <= 0 || c.CapVMax <= 0 {
		return fmt.Errorf("device: capacitor C=%g Vmax=%g must be positive", c.CapC, c.CapVMax)
	}
	if !(0 <= c.VOff && c.VOff < c.VOn && c.VOn <= c.CapVMax) {
		return fmt.Errorf("device: need 0 ≤ VOff < VOn ≤ VMax, have %g/%g/%g", c.VOff, c.VOn, c.CapVMax)
	}
	if c.SigmaB <= 0 || c.SigmaR <= 0 {
		return fmt.Errorf("device: σ_B=%g σ_R=%g must be positive", c.SigmaB, c.SigmaR)
	}
	if c.OmegaBExtra < 0 || c.OmegaRExtra < 0 {
		return fmt.Errorf("device: Ω extras must be ≥ 0")
	}
	if c.RunTimeout < 0 {
		return fmt.Errorf("device: RunTimeout %v must be ≥ 0", c.RunTimeout)
	}
	if c.Engine < EngineDefault || c.Engine > EngineReference {
		return fmt.Errorf("device: unknown engine %d", int(c.Engine))
	}
	return nil
}

// FixedSupplyConfig builds the capacitor parameters for a bench-style
// supply delivering exactly eJoules per active period: the capacitor is
// sized so its usable energy between VOn and VOff equals eJoules, and
// with no harvester the recharge is instantaneous.
func FixedSupplyConfig(eJoules float64) (capC, vMax, vOn, vOff float64) {
	// choose VOn = 3 V, VOff = 1.8 V (MSP430-like thresholds)
	vOn, vOff = 3.0, 1.8
	capC = 2 * eJoules / (vOn*vOn - vOff*vOff)
	return capC, vOn, vOn, vOff
}

// Device is one simulated intermittent platform.
type Device struct {
	cfg   Config
	strat Strategy

	core  *cpu.Core
	mem   *mem.System
	cap   *energy.Capacitor
	cache *mem.Cache // nil when not configured

	// store is the FRAM checkpoint area the two-phase commit protocol
	// writes to (see ckpt.go); inj is the attached fault injector, nil
	// for honest power.
	store *energy.CheckpointArea
	inj   FaultInjector

	// Volatile mirrors of nonvolatile state, resynced from the store at
	// every boot: the committed output stream, which slot holds the live
	// checkpoint (-1 none), and whether a restorable checkpoint exists.
	committedOut []uint32
	activeSlot   int
	hasCkpt      bool
	// everCommitted distinguishes a cold start that lost a checkpoint
	// (counted as a recovery event) from one that never had any.
	everCommitted bool
	// framWrites counts data stores to nonvolatile memory since the run
	// began; each checkpoint records the count at its commit. Rolling
	// execution back past a commit cannot roll these stores back, so a
	// restore older than the newest commit is only crash-consistent when
	// the two counts match (see the unrecoverability guard in ckpt.go).
	framWrites uint64
	// maxSeq is the newest commit sequence number that ever landed — the
	// ground truth the staleness guard compares restore targets against.
	maxSeq uint64
	// stratNaive mirrors the strategy's NaiveCommitter claim: the
	// attached runtime itself selects the single-slot unvalidated
	// commit (alpaca-naive). Effective only while an injector is
	// attached — see naiveCommit.
	stratNaive bool

	timeS  float64
	cycles uint64 // total consumed cycles (exec+backup+restore+idle)

	// Interrupt/deadline polling (run.go): wall-clock start of the
	// current Run and the simulated work since the last real check.
	runStart  time.Time
	sincePoll uint64

	// Batched-engine state (run.go): the resolved engine, the SYS codes
	// that end a batch, the reusable per-batch record sink, and the
	// worst-case active energy per cycle the event-horizon math uses.
	engine  Engine
	stopSys isa.SysMask
	sink    cpu.BatchSink
	maxEPC  float64

	// obs is the attached lifecycle tracer; nil means observability is
	// disabled and every emission site reduces to this nil check
	// (observe.go).
	obs obsv.Tracer

	// rec is the attached observation recorder (obslog.go); nil means
	// no recording and each hook reduces to a nil check. bkupStart
	// remembers the consumed-cycle position the current backup began
	// at, for the recorder's commit records.
	rec       *ObsLog
	bkupStart uint64

	// Livelock diagnosis state (run.go): where the last brown-out hit,
	// the boot PC of the current period (the atomic-region entry), and
	// the previous period's signature for the exact-repeat check.
	deathPC        uint32
	deathSince     uint64
	bootPC         uint32
	repeatArmed    bool
	lastDeathPC    uint32
	lastDeadCycles uint64
	lastFramWrites uint64

	// per-period running counters
	period        PeriodStats
	sinceCommit   uint64  // executed cycles not yet committed by a backup
	pendingE      float64 // energy of those uncommitted cycles
	execSinceBkup uint64  // executed cycles since last backup (for τ_B)
	chargeS       float64 // recharge time preceding the current period

	result Result
	halted bool // final commit landed; run complete
}

// New builds a device running prog under strategy s.
func New(cfg Config, s Strategy) (*Device, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("device: nil strategy")
	}
	if cfg.CacheBlockSize == 0 {
		if cs, ok := s.(CacheSizer); ok {
			cfg.CacheBlockSize = cs.CacheBlockSize()
		}
	}
	ms, err := mem.NewSystem(cfg.SRAMSize, cfg.FRAMSize)
	if err != nil {
		return nil, err
	}
	cap_, err := energy.NewCapacitor(cfg.CapC, cfg.CapVMax, 0)
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:        cfg,
		strat:      s,
		core:       &cpu.Core{},
		mem:        ms,
		cap:        cap_,
		store:      energy.NewCheckpointArea(),
		inj:        cfg.Faults,
		activeSlot: -1,
	}
	if cfg.CacheBlockSize > 0 {
		sets, ways := cfg.CacheSets, cfg.CacheWays
		if sets == 0 {
			sets = 16
		}
		if ways == 0 {
			ways = 2
		}
		cache, err := mem.NewCache(cfg.CacheBlockSize, sets, ways)
		if err != nil {
			return nil, err
		}
		d.cache = cache
	}
	d.engine = cfg.Engine.resolve()
	d.obs = resolveObserver(cfg.Observe)
	d.maxEPC = math.Max(cfg.Power.EnergyPerCycle(energy.ClassALU),
		cfg.Power.EnergyPerCycle(energy.ClassMem))
	if so, ok := s.(SysObserver); ok {
		d.stopSys = so.ObservedSys()
	} else {
		d.stopSys = isa.AllSys
	}
	if nc, ok := s.(NaiveCommitter); ok && nc.NaiveCommit() {
		d.stratNaive = true
	}
	d.rec = cfg.Record
	if d.rec != nil {
		// Every input read must end its batch so the recorder sees an
		// exact per-instruction timestamp. Extra batch boundaries are
		// result-neutral: the reference engine delivers a PostStep after
		// every instruction anyway, so the Horizon contract already
		// requires strategies to tolerate them.
		d.stopSys |= isa.MaskOf(isa.SysSense)
	}
	s.Attach(d)
	return d, nil
}

// Cache returns the mixed-volatility cache model, or nil when the
// device is configured without one. Cache-aware strategies read its
// dirty-block payload and flush it at checkpoints.
func (d *Device) Cache() *mem.Cache { return d.cache }

// --- accessors strategies use ---

// Cfg returns the device configuration.
func (d *Device) Cfg() Config { return d.cfg }

// PC returns the core's current program counter. In a PreStep hook it
// is the instruction about to execute (and the PC a backup taken there
// resumes at); in PostStep it has already advanced past the executed
// instruction. Task runtimes key their boundary table on it.
func (d *Device) PC() uint32 { return d.core.PC }

// Voltage returns the current capacitor voltage.
func (d *Device) Voltage() float64 { return d.cap.Voltage() }

// StoredEnergy returns the capacitor's usable energy above VOff,
// clamped at zero when the voltage sits below the brown-out threshold.
func (d *Device) StoredEnergy() float64 {
	e := d.cap.UsableEnergy(d.cap.Voltage(), d.cfg.VOff)
	if e < 0 {
		return 0
	}
	return e
}

// FullSupply returns the usable energy of a freshly charged capacitor —
// the model's E. Threshold-based strategies use it to place their
// trigger voltage relative to the period budget.
func (d *Device) FullSupply() float64 {
	return d.cap.UsableEnergy(d.cfg.VOn, d.cfg.VOff)
}

// ExecSinceBackup returns executed cycles since the last committed
// backup — the live τ_B counter watchdog strategies use.
func (d *Device) ExecSinceBackup() uint64 { return d.execSinceBkup }

// SRAMFootprint is the number of volatile bytes a full-memory
// checkpoint must save: the program's initialized SRAM data, word
// aligned, or at least one word.
func (d *Device) SRAMFootprint() int {
	n := len(d.cfg.Prog.SRAMImage)
	if n == 0 {
		n = 4
	}
	return (n + 3) &^ 3
}

// BackupCost estimates the energy a backup of the payload would consume
// — what Hibernus-style strategies need to place their voltage
// threshold.
func (d *Device) BackupCost(p Payload) float64 {
	cycles := d.transferCycles(p.Bytes(), d.cfg.SigmaB)
	return float64(cycles)*d.cfg.Power.EnergyPerCycle(energy.ClassMem) +
		float64(p.Bytes())*d.cfg.OmegaBExtra
}

// HasCheckpoint reports whether a restorable committed checkpoint
// exists. Under fault injection this can revert to false when both
// checkpoint slots are corrupted and the device cold-restarts.
func (d *Device) HasCheckpoint() bool { return d.hasCkpt }

// CyclesAboveEnergy returns a conservative count of cycles the device
// can execute before its stored energy (above VOff) could drop to
// target: worst active class, harvesting ignored, and a slack margin
// subtracted to swallow floating-point drift. Threshold strategies use
// it as their Horizon — the guarantee is one-sided: the true crossing
// never happens sooner, so a batch bounded by it cannot skip past the
// step where the per-step engine would have fired.
func (d *Device) CyclesAboveEnergy(target float64) uint64 {
	if d.maxEPC <= 0 {
		return HorizonInfinite
	}
	avail := d.StoredEnergy() - target
	if avail <= 0 {
		return 0
	}
	n := avail / d.maxEPC
	if n >= 1<<62 {
		return HorizonInfinite
	}
	return horizonSlack(uint64(n))
}

// horizonSlack shaves a safety margin off a conservatively computed
// cycle horizon: 64 cycles absolute (covering the ≤ 7-cycle instruction
// overshoot many times over) plus 2⁻¹⁶ relative (orders of magnitude
// above the ~2⁻⁵² relative error a batch's float arithmetic can
// accumulate). Horizons at or below the margin round down to zero,
// which the engine treats as "per-step territory".
func horizonSlack(n uint64) uint64 {
	slack := 64 + n>>16
	if n <= slack {
		return 0
	}
	return n - slack
}

func (d *Device) transferCycles(bytes int, sigma float64) uint64 {
	if bytes <= 0 {
		return 0
	}
	return uint64(math.Ceil(float64(bytes) / sigma))
}

// consume draws energy for n cycles of the given class, harvesting in
// parallel, and reports whether the supply survived (stayed at or above
// VOff).
func (d *Device) consume(n uint64, class energy.InstrClass) bool {
	if n == 0 {
		return d.cap.Voltage() >= d.cfg.VOff
	}
	dt := float64(n) * d.cfg.Power.CyclePeriod()
	if d.cfg.Harvester != nil {
		h := d.cfg.Harvester.EnergyOver(d.timeS, dt)
		d.period.HarvestedE += d.cap.Store(h)
	}
	d.timeS += dt
	d.cycles += n
	e := float64(n) * d.cfg.Power.EnergyPerCycle(class)
	ok := d.cap.Draw(e)
	alive := ok && d.cap.Voltage() >= d.cfg.VOff
	// Scheduled supply faults fire independent of the capacitor model:
	// the injector empties the store mid-flight, wherever execution is.
	if alive && d.inj != nil && d.inj.PowerCutDue(d.cycles) {
		d.cap.SetVoltage(0)
		d.result.Faults.PowerCuts++
		if d.obs != nil {
			d.emit(obsv.EvFaultPowerCut, 0, 0, 0)
		}
		return false
	}
	return alive
}

// drawExtra draws flat energy (per-byte NVM surcharges) with no time
// passing.
func (d *Device) drawExtra(e float64) bool {
	if e <= 0 {
		return d.cap.Voltage() >= d.cfg.VOff
	}
	ok := d.cap.Draw(e)
	return ok && d.cap.Voltage() >= d.cfg.VOff
}
