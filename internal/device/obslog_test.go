package device_test

import (
	"reflect"
	"testing"

	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/faults"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// obslog_test.go — the observation recorder's neutrality contract:
// attaching Config.Record must not change a run's Result in any field,
// on either engine, with or without fault injection. The recorder
// disables the fused settle path and widens the batch-stop mask, both
// covered by the engine-equivalence oracle, so any divergence here is a
// recorder bug.

func obslogCfg(t *testing.T, stratName, wlName string, eng device.Engine, inject bool) (device.Config, device.Strategy, []uint32) {
	t.Helper()
	spec, ok := strategy.Lookup(stratName)
	if !ok {
		t.Fatalf("strategy %s missing", stratName)
	}
	w, ok := workload.Get(wlName)
	if !ok {
		t.Fatalf("workload %s missing", wlName)
	}
	opts := workload.Options{Seg: spec.Seg}
	prog, err := w.Build(opts)
	if err != nil {
		t.Fatalf("build %s: %v", wlName, err)
	}
	pm := energy.MSP430Power()
	e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	cfg := device.Config{
		Prog: prog, Power: pm,
		CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
		MaxPeriods: 20000, MaxCycles: 2_000_000_000,
		Engine: eng,
	}
	if inject {
		inj, err := faults.New(faults.Plan{
			Seed:                5,
			RandomCutMeanCycles: 7000,
			TornWriteProb:       0.001,
			StaleRestoreProb:    0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
	}
	return cfg, spec.New(), w.Ref(opts)
}

func TestObsLogResultNeutral(t *testing.T) {
	engines := []device.Engine{device.EngineReference, device.EngineBatched}
	for _, stratName := range []string{"timer", "chain", "clank"} {
		for _, wlName := range []string{"sense", "counter"} {
			for _, eng := range engines {
				for _, inject := range []bool{false, true} {
					// An honest fail-stop (e.g. Clank detecting
					// unrecoverable FRAM under injection) is a valid
					// outcome; it too must be recorder-invariant.
					run := func(rec *device.ObsLog) (*device.Result, error) {
						cfg, strat, _ := obslogCfg(t, stratName, wlName, eng, inject)
						cfg.Record = rec
						d, err := device.New(cfg, strat)
						if err != nil {
							t.Fatalf("%s/%s: %v", stratName, wlName, err)
						}
						return d.Run()
					}
					bare, bareErr := run(nil)
					log := &device.ObsLog{}
					recorded, recErr := run(log)
					if (bareErr == nil) != (recErr == nil) ||
						(bareErr != nil && bareErr.Error() != recErr.Error()) {
						t.Fatalf("%s/%s engine=%v inject=%v: recorder changed the error:\nbare: %v\nrec:  %v",
							stratName, wlName, eng, inject, bareErr, recErr)
					}
					if !reflect.DeepEqual(bare, recorded) {
						t.Fatalf("%s/%s engine=%v inject=%v: recorder changed the Result",
							stratName, wlName, eng, inject)
					}
					if bareErr != nil {
						continue
					}
					if len(log.Boots) == 0 || len(log.Commits) == 0 {
						t.Fatalf("%s/%s: empty observation log (boots=%d commits=%d)",
							stratName, wlName, len(log.Boots), len(log.Commits))
					}
					if wlName == "sense" && len(log.Senses) == 0 {
						t.Fatalf("%s/sense: no sense observations recorded", stratName)
					}
				}
			}
		}
	}
}

// TestObsLogStructure pins the recorder's core invariants on a clean
// sense run: the boot lineage starts cold, sense indices are the
// architectural sequence, every committed sense points at a commit that
// lists it, and committed output grows append-only.
func TestObsLogStructure(t *testing.T) {
	cfg, strat, want := obslogCfg(t, "timer", "sense", device.EngineBatched, false)
	log := &device.ObsLog{}
	cfg.Record = log
	d, err := device.New(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("clean run broken: completed=%v output=%v", res.Completed, res.Output)
	}
	if log.Truncated {
		t.Fatal("clean run truncated the log")
	}
	if !log.Boots[0].Cold || log.Boots[0].Boot != 0 {
		t.Fatalf("first boot not a cold start: %+v", log.Boots[0])
	}
	for i, s := range log.Senses {
		if s.Index != uint32(i) {
			t.Fatalf("sense %d has index %d; clean run must observe the input sequence in order", i, s.Index)
		}
		if s.Committed {
			co := log.Commits[s.Commit]
			found := false
			for _, si := range co.Senses {
				found = found || si == i
			}
			if !found {
				t.Fatalf("sense %d claims commit %d, which does not list it", i, s.Commit)
			}
		}
	}
	base := 0
	var out []uint32
	for i, co := range log.Commits {
		if co.OutBase != base {
			t.Fatalf("commit %d OutBase = %d, want append-only %d", i, co.OutBase, base)
		}
		out = append(out, co.Out...)
		base = len(out)
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("committed output stream %v does not reassemble the result %v", out, want)
	}
}
