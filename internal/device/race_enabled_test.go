//go:build race

package device_test

// raceEnabled mirrors the -race build tag so the equivalence oracle can
// size its matrix: the detector instruments every load and store in the
// settle loop, slowing full-matrix runs roughly an order of magnitude.
const raceEnabled = true
