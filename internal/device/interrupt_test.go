package device

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"ehmodel/internal/asm"
	"ehmodel/internal/isa"
)

// spinProgram never halts — the workload the RunTimeout deadline exists
// to cut off.
func spinProgram(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.New("spin")
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, 1)
	b.Jump("loop")
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDeadlineAbortsNonHaltingRun: a program that never halts is cut
// off by Config.RunTimeout with the typed deadline error instead of
// spinning until MaxCycles.
func TestDeadlineAbortsNonHaltingRun(t *testing.T) {
	cfg := fixedConfig(t, spinProgram(t), 1e-6)
	cfg.RunTimeout = 20 * time.Millisecond
	d, err := New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = d.Run()
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Run returned %v, want ErrDeadlineExceeded", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("error is not a *DeadlineError: %v", err)
	}
	if de.Timeout != cfg.RunTimeout || de.Cycles == 0 {
		t.Fatalf("deadline detail: %+v", de)
	}
	// Coarse is fine; wedged-for-seconds is not.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

// TestInterruptHookAborts: a firing Interrupt hook (the runner wires
// context cancellation through it) aborts the run with the hook's error.
func TestInterruptHookAborts(t *testing.T) {
	stop := errors.New("sweep canceled")
	polls := 0
	cfg := fixedConfig(t, spinProgram(t), 1e-6)
	cfg.Interrupt = func() error {
		polls++
		if polls >= 3 {
			return stop
		}
		return nil
	}
	d, err := New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); !errors.Is(err, stop) {
		t.Fatalf("Run returned %v, want the hook's error", err)
	}
	if polls < 3 {
		t.Fatalf("hook polled %d times", polls)
	}
}

// TestPollingDoesNotPerturbResults: enabling a (non-firing) deadline and
// interrupt hook must leave the simulation bit-identical — the poll is
// a wall-clock check only, never simulation state.
func TestPollingDoesNotPerturbResults(t *testing.T) {
	prog := loopProgram(t, 2000, asm.SRAM)
	base := fixedConfig(t, prog, 1e-6)

	run := func(cfg Config) *Result {
		t.Helper()
		d, err := New(cfg, intervalStrategy{k: 500})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(base)
	guarded := base
	guarded.RunTimeout = time.Hour
	guarded.Interrupt = func() error { return nil }
	if got := run(guarded); !reflect.DeepEqual(plain, got) {
		t.Fatalf("polling changed the result:\n%+v\n%+v", plain, got)
	}
}

// TestRunTimeoutValidation: negative budgets are config errors.
func TestRunTimeoutValidation(t *testing.T) {
	cfg := fixedConfig(t, loopProgram(t, 10, asm.SRAM), 1e-6)
	cfg.RunTimeout = -time.Second
	if _, err := New(cfg, nullStrategy{}); err == nil {
		t.Fatal("negative RunTimeout accepted")
	}
}
