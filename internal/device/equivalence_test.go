package device_test

import (
	"fmt"
	"reflect"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/faults"
	"ehmodel/internal/strategy"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

// This file holds the lock-step equivalence oracle for the batched
// execution engine: for every workload × strategy × supply shape
// (bench, harvested RF trace, fault-injected), a run under
// EngineBatched must produce a Result byte-identical to EngineReference
// — same periods, same backups, same committed output, same
// floating-point energy accounting to the last bit. Short mode and
// race-detector builds run a representative slice; a plain
// `go test` without -short runs the full matrix (that is `make
// check`'s race-free test pass — see equivFullMatrix).

// violationWorder is implemented by Clank; its WAR-hazard word set must
// also survive the engine swap.
type violationWorder interface {
	ViolationWords() []uint32
}

// benchEquivCfg builds the bench-supply config the integration tests
// use: per-period energy expressed in ALU cycles.
func benchEquivCfg(prog *asm.Program, cyclesOfEnergy float64) device.Config {
	pm := energy.MSP430Power()
	e := cyclesOfEnergy * pm.EnergyPerCycle(energy.ClassALU)
	capC, vmax, von, voff := device.FixedSupplyConfig(e)
	return device.Config{
		Prog:       prog,
		Power:      pm,
		CapC:       capC,
		CapVMax:    vmax,
		VOn:        von,
		VOff:       voff,
		MaxPeriods: 20000,
		MaxCycles:  2_000_000_000,
	}
}

// runEngines executes the same configuration under both engines —
// fresh strategy, fresh injector, fresh harvester per run via the make
// callback — and fails the test on any observable difference.
func runEngines(t *testing.T, make func(eng device.Engine) (*device.Device, device.Strategy)) {
	t.Helper()
	dRef, sRef := make(device.EngineReference)
	resRef, errRef := dRef.Run()
	dBat, sBat := make(device.EngineBatched)
	resBat, errBat := dBat.Run()

	if (errRef == nil) != (errBat == nil) ||
		(errRef != nil && errRef.Error() != errBat.Error()) {
		t.Fatalf("engines disagree on error:\nreference: %v\nbatched:   %v", errRef, errBat)
	}
	if errRef != nil {
		return
	}
	if !reflect.DeepEqual(resRef, resBat) {
		t.Fatalf("results differ:\n%s", diffResults(resRef, resBat))
	}
	vwRef, okRef := sRef.(violationWorder)
	vwBat, okBat := sBat.(violationWorder)
	if okRef && okBat && !reflect.DeepEqual(vwRef.ViolationWords(), vwBat.ViolationWords()) {
		t.Fatalf("violation words differ:\nreference: %v\nbatched:   %v",
			vwRef.ViolationWords(), vwBat.ViolationWords())
	}
}

// diffResults names what diverged, so an equivalence failure points at
// the field — and for period stats, the first differing period —
// instead of dumping two megabyte-scale structs.
func diffResults(a, b *device.Result) string {
	var out string
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	for i := 0; i < av.NumField(); i++ {
		name := av.Type().Field(i).Name
		if reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			continue
		}
		switch name {
		case "Periods":
			if len(a.Periods) != len(b.Periods) {
				out += fmt.Sprintf("Periods: %d vs %d periods\n", len(a.Periods), len(b.Periods))
				continue
			}
			for p := range a.Periods {
				if !reflect.DeepEqual(a.Periods[p], b.Periods[p]) {
					out += fmt.Sprintf("Periods[%d]:\nreference: %+v\nbatched:   %+v\n",
						p, a.Periods[p], b.Periods[p])
					break
				}
			}
		default:
			out += fmt.Sprintf("%s:\nreference: %+v\nbatched:   %+v\n",
				name, av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
	if out == "" {
		out = "(structs compare unequal but no field diff found)"
	}
	return out
}

// equivFullMatrix reports whether the oracle should run its full
// workload × strategy × supply matrix. The slice is used in -short runs
// and under the race detector: race instrumentation slows the fused
// settle loop roughly 10×, which pushes the full matrix past any
// reasonable package timeout, so `make check` runs the matrix in its
// race-free `go test` pass and keeps the representative slice — every
// engine path, three strategies, two workloads, one trace, one fault
// seed — under -race.
func equivFullMatrix() bool { return !testing.Short() && !raceEnabled }

// equivSpecs returns the strategy slice for the current test mode.
func equivSpecs(t *testing.T) []strategy.Spec {
	if equivFullMatrix() {
		return strategy.Catalog()
	}
	var out []strategy.Spec
	for _, name := range []string{"clank", "hibernus", "timer"} {
		s, ok := strategy.Lookup(name)
		if !ok {
			t.Fatalf("strategy %q missing from catalog", name)
		}
		out = append(out, s)
	}
	return out
}

// equivWorkloads returns the workload slice for the current test mode.
func equivWorkloads(t *testing.T) []workload.Workload {
	if equivFullMatrix() {
		return workload.All()
	}
	var out []workload.Workload
	for _, name := range []string{"counter", "crc"} {
		w, ok := workload.Get(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		out = append(out, w)
	}
	return out
}

// TestEngineEquivalenceBench is the bench-supply face of the oracle:
// fixed energy per period, instantly recharged.
func TestEngineEquivalenceBench(t *testing.T) {
	for _, c := range equivSpecs(t) {
		for _, w := range equivWorkloads(t) {
			c, w := c, w
			t.Run(c.Name+"/"+w.Name, func(t *testing.T) {
				t.Parallel()
				prog, err := w.Build(workload.Options{Seg: c.Seg})
				if err != nil {
					t.Fatal(err)
				}
				runEngines(t, func(eng device.Engine) (*device.Device, device.Strategy) {
					cfg := benchEquivCfg(prog, 20000)
					cfg.Engine = eng
					s := c.New()
					d, err := device.New(cfg, s)
					if err != nil {
						t.Fatal(err)
					}
					return d, s
				})
			})
		}
	}
}

// TestEngineEquivalenceWideWindow aims the oracle at the fused
// engine's large-batch regimes: timer windows far beyond
// maxBatchCycles (so batches run at the cap and PostStep firings land
// mid-stretch), windows aligned to the cap, and the infinite window
// (batches bounded by the energy horizon alone). Supplies that
// complete the workload in one period and supplies that brown out
// repeatedly both appear, so the per-step fallback window and
// mid-run death execute under both engines at every window size.
func TestEngineEquivalenceWideWindow(t *testing.T) {
	cases := []struct {
		name           string
		tauB           uint64
		cyclesOfEnergy float64
	}{
		{"wide-window/one-period", 50_000, 600_000},
		{"wide-window/brownouts", 20_000, 60_000},
		{"chunk-aligned", 8192, 100_000},
		{"infinite-window", 0, 600_000},
	}
	for _, c := range cases {
		for _, w := range equivWorkloads(t) {
			c, w := c, w
			t.Run(c.name+"/"+w.Name, func(t *testing.T) {
				t.Parallel()
				prog, err := w.Build(workload.Options{})
				if err != nil {
					t.Fatal(err)
				}
				runEngines(t, func(eng device.Engine) (*device.Device, device.Strategy) {
					cfg := benchEquivCfg(prog, c.cyclesOfEnergy)
					cfg.Engine = eng
					s := strategy.NewTimer(c.tauB, 0.1)
					d, err := device.New(cfg, s)
					if err != nil {
						t.Fatal(err)
					}
					return d, s
				})
			})
		}
	}
}

// TestEngineEquivalenceHarvested repeats the oracle with an RF-style
// harvester driving the supply, so batches meet charge phases, partial
// periods and harvest-while-executing accounting.
func TestEngineEquivalenceHarvested(t *testing.T) {
	kinds := trace.Kinds()
	if !equivFullMatrix() {
		kinds = kinds[:1]
	}
	for _, c := range equivSpecs(t) {
		for _, kind := range kinds {
			c, kind := c, kind
			t.Run(c.Name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				w, ok := workload.Get("counter")
				if !ok {
					t.Fatal("counter workload missing")
				}
				prog, err := w.Build(workload.Options{Seg: c.Seg})
				if err != nil {
					t.Fatal(err)
				}
				tr := trace.Generate(kind, 20, 1e-3, 42)
				runEngines(t, func(eng device.Engine) (*device.Device, device.Strategy) {
					h, err := energy.NewHarvester(tr, 3000, 0.7)
					if err != nil {
						t.Fatal(err)
					}
					cfg := benchEquivCfg(prog, 6000)
					cfg.Engine = eng
					cfg.Harvester = h
					s := c.New()
					d, err := device.New(cfg, s)
					if err != nil {
						t.Fatal(err)
					}
					return d, s
				})
			})
		}
	}
}

// TestEngineEquivalenceFaulted repeats the oracle under fault
// injection: scheduled and random power cuts (which the batched engine
// must land on the exact per-step instruction), torn checkpoint
// writes, bit flips and stale restores.
func TestEngineEquivalenceFaulted(t *testing.T) {
	seeds := []int64{1}
	if equivFullMatrix() {
		seeds = []int64{1, 7, 23}
	}
	for _, c := range equivSpecs(t) {
		for _, w := range equivWorkloads(t) {
			for _, seed := range seeds {
				c, w, seed := c, w, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", c.Name, w.Name, seed), func(t *testing.T) {
					t.Parallel()
					prog, err := w.Build(workload.Options{Seg: c.Seg})
					if err != nil {
						t.Fatal(err)
					}
					plan := faults.Plan{
						Seed:                seed,
						RandomCutMeanCycles: 30_000,
						CutCycles:           []uint64{50_000, 123_456},
						TornWriteProb:       0.01,
						BitFlipRate:         1e-4,
						StaleRestoreProb:    0.05,
					}
					runEngines(t, func(eng device.Engine) (*device.Device, device.Strategy) {
						inj, err := faults.New(plan)
						if err != nil {
							t.Fatal(err)
						}
						cfg := benchEquivCfg(prog, 20000)
						cfg.Engine = eng
						cfg.Faults = inj
						s := c.New()
						d, err := device.New(cfg, s)
						if err != nil {
							t.Fatal(err)
						}
						return d, s
					})
				})
			}
		}
	}
}
