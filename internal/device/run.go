package device

import (
	"errors"
	"fmt"
	"time"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
	"ehmodel/internal/obsv"
)

// maxChargeS bounds how long the simulator will wait for the harvester
// to refill the capacitor before declaring the source dead.
const maxChargeS = 3600.0

// ErrNoProgress is the sentinel a Run error matches (errors.Is) when the
// harvested supply cannot recharge the capacitor to the restore
// threshold, so the device can never execute again.
var ErrNoProgress = errors.New("device: no forward progress")

// NoProgressError reports a run terminated because the device can never
// commit again: the supply stalled below the power-on threshold, or —
// with Config.DetectLivelock — consecutive charges died identically
// with nothing committed (a livelock). It wraps ErrNoProgress for
// errors.Is and carries the period count reached before the stall.
type NoProgressError struct {
	// Periods is the number of active periods completed before the
	// supply stalled.
	Periods int
	// StuckV is the capacitor voltage the charge phase plateaued at;
	// TargetV is the VOn it needed to reach. Zero for livelocks (the
	// bench supply always recharges; the region is what never fits).
	StuckV, TargetV float64
	// PC is the program counter at the most recent brown-out and
	// SinceCommit the cycles executed since the last committed backup
	// at that moment. RegionEntry is the PC the dying period booted at
	// — the atomic-region naming ("entry=N") the static WCEC verifier's
	// livelock verdicts use, so dynamic and static reports line up.
	PC          uint32
	SinceCommit uint64
	RegionEntry uint32
	// Livelock marks the exact-repeat diagnosis: a full charge died at
	// the same PC with the same uncommitted work and no nonvolatile
	// side effects as the charge before it, so every future period
	// repeats it forever.
	Livelock bool
}

func (e *NoProgressError) Error() string {
	if e.Livelock {
		return fmt.Sprintf("device: no forward progress after %d periods: livelock in region entry=%d — every full charge dies at PC %d with %d cycles since last commit",
			e.Periods, e.RegionEntry, e.PC, e.SinceCommit)
	}
	s := fmt.Sprintf("device: no forward progress after %d periods: harvester cannot reach VOn=%g within %gs (stuck at %gV)",
		e.Periods, e.TargetV, maxChargeS, e.StuckV)
	if e.Periods > 0 {
		s += fmt.Sprintf("; last brown-out in region entry=%d at PC %d, %d cycles since last commit",
			e.RegionEntry, e.PC, e.SinceCommit)
	}
	return s
}

// Is reports ErrNoProgress as the sentinel this error wraps.
func (e *NoProgressError) Is(target error) bool { return target == ErrNoProgress }

// ErrDeadlineExceeded is the sentinel a Run error matches (errors.Is)
// when the run blew its Config.RunTimeout wall-clock budget.
var ErrDeadlineExceeded = errors.New("device: run deadline exceeded")

// DeadlineError reports a run aborted by the coarse cycle-batch
// deadline check. It wraps ErrDeadlineExceeded for errors.Is and
// records how far the simulation got, so a sweep's failure report can
// distinguish a near miss from a wedged run.
type DeadlineError struct {
	// Timeout is the configured wall-clock budget.
	Timeout time.Duration
	// Cycles and Periods are the simulation position at expiry.
	Cycles  uint64
	Periods int
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("device: run exceeded its %v deadline (at %d cycles, %d periods)",
		e.Timeout, e.Cycles, e.Periods)
}

// Is reports ErrDeadlineExceeded as the sentinel this error wraps.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadlineExceeded }

// ProgramError reports a program whose control flow left the code: the
// PC fell (or branched) past the last instruction without halting. It
// is a program bug, not a power event — the runner's failure summary
// classifies it separately from deadlines and panics so a sweep report
// points at the workload rather than the harness.
type ProgramError struct {
	// PC is the out-of-range program counter; Program names the
	// offending workload build.
	PC      uint32
	Program string
}

func (e *ProgramError) Error() string {
	return fmt.Sprintf("device: PC %d ran off the end of %q", e.PC, e.Program)
}

// Interrupt/deadline poll pacing. pollInterrupt only runs the real
// check (wall clock + context hook) once per pollBatchCycles credited
// work units; the pollCredit* constants are how much work each loop
// credits per iteration. Together they set the deadline resolution:
// a loop crediting n units per iteration discovers an expired deadline
// at worst ⌈pollBatchCycles/n⌉ iterations late. Larger credits mean
// coarser resolution but a cheaper loop — and since the charge phase's
// iterations integrate up to 50 ms of simulated time each (versus one
// instruction in the active phase, or a 64-cycle sleep chunk), each
// loop gets its own credit so the worst-case delay between real checks
// stays comparable across phases. None of this ever perturbs
// simulation state; coarse is the point — a deadline is a guard
// against wedged sweeps, not a precision timer.
const (
	// pollBatchCycles is the real-check period in credited work units.
	pollBatchCycles = 1 << 16
	// pollCreditPeriod is credited once per active period by Run, so
	// strategies thrashing through thousands of near-empty periods
	// still reach the check about every 64 periods.
	pollCreditPeriod = 1024
	// pollCreditCharge is credited per charge-phase integration step;
	// a dying source spins these ~200 µs-to-50 ms steps for up to an
	// hour of simulated time, hitting the check every 256 iterations.
	pollCreditCharge = 256
	// pollCreditIdle matches idleToDeath's burn chunk: the sleep loop
	// credits its own 64 consumed cycles, checking every 1024 chunks.
	pollCreditIdle = 64
)

// pollInterrupt credits n simulated work units and, once a batch has
// accumulated, runs the real check: the Interrupt hook first (context
// cancellation), then the RunTimeout deadline.
func (d *Device) pollInterrupt(n uint64) error {
	if d.cfg.Interrupt == nil && d.cfg.RunTimeout == 0 {
		return nil
	}
	d.sincePoll += n
	if d.sincePoll < pollBatchCycles {
		return nil
	}
	// Carry the overshoot instead of zeroing: the k-th real check then
	// falls at the same cumulative credit count in every engine, which
	// is what makes the poll boundary below engine-independent.
	over := d.sincePoll - pollBatchCycles
	d.sincePoll = over
	if d.cfg.Interrupt != nil {
		if err := d.cfg.Interrupt(); err != nil {
			return err
		}
	}
	if d.cfg.RunTimeout > 0 && time.Since(d.runStart) > d.cfg.RunTimeout {
		// Report the poll boundary, not the caller's position: the
		// batched engine credits a whole batch at once, so d.cycles
		// alone would sit up to maxBatchCycles past the boundary the
		// reference engine reports. Backing the overshoot out lands
		// both engines on the identical cycle number (credits are the
		// same cumulative sequence in both; a lump never spans two
		// boundaries since maxBatchCycles < pollBatchCycles).
		boundary := d.cycles
		if over <= boundary {
			boundary -= over
		} else {
			boundary = 0
		}
		if d.obs != nil {
			d.emit(obsv.EvDeadline, boundary, 0, 0)
		}
		return &DeadlineError{
			Timeout: d.cfg.RunTimeout,
			Cycles:  boundary,
			Periods: len(d.result.Periods),
		}
	}
	return nil
}

// Run executes the program under the configured strategy until it halts
// and commits, or a run limit is reached. The returned Result is valid
// in both cases (Completed distinguishes them); errors indicate program
// or configuration bugs, not power failures — except the sweep-engine
// aborts: a RunTimeout expiry returns a *DeadlineError (errors.Is
// ErrDeadlineExceeded) and a firing Interrupt hook returns its error.
func (d *Device) Run() (*Result, error) {
	d.result = Result{Strategy: d.strat.Name(), Program: d.cfg.Prog.Name}
	d.runStart = time.Now()
	d.sincePoll = 0
	if err := d.mem.WriteFRAMImage(d.cfg.Prog.FRAMImage); err != nil {
		return nil, err
	}
	if d.inj != nil {
		d.inj.BeginRun()
	}
	if d.rec != nil {
		d.rec.reset()
	}
	if d.obs != nil {
		var eng uint64
		if d.engine != EngineReference && d.cache == nil {
			eng = 1
		}
		d.emit(obsv.EvRunBegin, eng, 0, 0)
	}
	for len(d.result.Periods) < d.cfg.MaxPeriods && d.cycles < d.cfg.MaxCycles && !d.halted {
		// Credit a nominal batch per period so strategies that thrash
		// through thousands of near-empty periods still hit the check.
		if err := d.pollInterrupt(pollCreditPeriod); err != nil {
			return nil, err
		}
		if err := d.chargePhase(); err != nil {
			return nil, err
		}
		d.beginPeriod()
		if d.obs != nil {
			d.emit(obsv.EvPowerOn, 0, 0, d.chargeS)
		}
		alive, err := d.boot()
		if err != nil {
			return nil, err
		}
		if alive {
			if err := d.activePhase(); err != nil {
				return nil, err
			}
		}
		d.endPeriod()
		if err := d.checkLivelock(); err != nil {
			return nil, err
		}
	}
	d.result.Completed = d.halted
	d.result.Output = append([]uint32(nil), d.committedOut...)
	d.result.TotalCycles = d.cycles
	d.result.TimeS = d.timeS
	if d.obs != nil {
		var done uint64
		if d.result.Completed {
			done = 1
		}
		d.emit(obsv.EvRunEnd, done, 0, 0)
	}
	return &d.result, nil
}

// chargePhase refills the capacitor to VOn. With no harvester the bench
// supply recharges instantly.
func (d *Device) chargePhase() error {
	start := d.timeS
	if d.cfg.Harvester == nil {
		d.cap.SetVoltage(d.cfg.VOn)
		d.chargeS = 0
		return nil
	}
	// Adaptive integration: step fine enough to resolve trace features
	// near the target, coarse when the source is nearly dead (spike
	// traces spend most of their time at microwatts).
	for d.cap.Voltage() < d.cfg.VOn {
		// The charge loop can spin for up to maxChargeS of simulated
		// time on a dying source; poll so a deadline can cut it short.
		if err := d.pollInterrupt(pollCreditCharge); err != nil {
			return err
		}
		need := d.cap.UsableEnergy(d.cfg.VOn, d.cap.Voltage())
		p := d.cfg.Harvester.PowerAt(d.timeS)
		chunk := 1e-4
		if p > 0 {
			if est := need / p / 20; est > chunk {
				chunk = est
			}
		} else {
			chunk = 5e-3
		}
		if chunk > 0.05 {
			chunk = 0.05
		}
		d.cap.Store(d.cfg.Harvester.EnergyOver(d.timeS, chunk))
		d.timeS += chunk
		if d.timeS-start > maxChargeS {
			return &NoProgressError{
				Periods:     len(d.result.Periods),
				StuckV:      d.cap.Voltage(),
				TargetV:     d.cfg.VOn,
				PC:          d.deathPC,
				SinceCommit: d.deathSince,
				RegionEntry: d.bootPC,
			}
		}
	}
	d.chargeS = d.timeS - start
	return nil
}

func (d *Device) beginPeriod() {
	d.period = PeriodStats{
		SupplyE:     d.cap.UsableEnergy(d.cap.Voltage(), d.cfg.VOff),
		ChargeTimeS: d.chargeS,
	}
	d.sinceCommit = 0
	d.pendingE = 0
	d.execSinceBkup = 0
}

// endPeriod converts uncommitted execution into dead cycles and archives
// the period.
func (d *Device) endPeriod() {
	if !d.halted {
		// Capture where the period died and how much work it loses, for
		// the NoProgressError report and the livelock repeat check.
		d.deathPC = d.core.PC
		d.deathSince = d.sinceCommit
	}
	if d.obs != nil {
		if d.halted {
			d.emit(obsv.EvHalt, 0, 0, 0)
		} else {
			active := d.period.ProgressCycles + d.period.BackupCycles +
				d.period.RestoreCycles + d.period.IdleCycles +
				d.period.DeadCycles + d.sinceCommit
			d.emit(obsv.EvBrownOut, d.sinceCommit, active, 0)
		}
	}
	if d.rec != nil && !d.halted {
		d.rec.powerFail()
	}
	d.period.DeadCycles += d.sinceCommit
	d.period.DeadE += d.pendingE
	d.sinceCommit = 0
	d.pendingE = 0
	d.result.Periods = append(d.result.Periods, d.period)
}

// checkLivelock runs the exact-repeat livelock diagnosis after a period
// (Config.DetectLivelock). On a bench supply without a fault injector a
// period is a deterministic function of the persistent state it boots
// from, so a full charge that committed nothing, wrote no nonvolatile
// data, and died at the same PC with the same uncommitted cycle count
// as the charge before it will repeat identically forever — the
// dynamic twin of the static WCEC livelock verdict.
func (d *Device) checkLivelock() error {
	if !d.cfg.DetectLivelock || d.halted ||
		d.cfg.Harvester != nil || d.inj != nil || len(d.result.Periods) == 0 {
		return nil
	}
	p := &d.result.Periods[len(d.result.Periods)-1]
	if p.Backups > 0 {
		d.repeatArmed = false
		return nil
	}
	if d.repeatArmed && d.deathPC == d.lastDeathPC &&
		p.DeadCycles == d.lastDeadCycles && d.framWrites == d.lastFramWrites {
		return &NoProgressError{
			Periods:     len(d.result.Periods),
			PC:          d.deathPC,
			SinceCommit: d.deathSince,
			RegionEntry: d.bootPC,
			Livelock:    true,
		}
	}
	d.repeatArmed = true
	d.lastDeathPC = d.deathPC
	d.lastDeadCycles = p.DeadCycles
	d.lastFramWrites = d.framWrites
	return nil
}

// boot powers the core up: restore the newest valid checkpoint from the
// two-slot area (falling back across slots on CRC failure), otherwise
// cold-start from the program image. It reports whether the device
// survived the restore cost.
func (d *Device) boot() (alive bool, err error) {
	d.core.Reset()
	d.mem.LoseVolatile()
	if d.cache != nil {
		d.cache.Invalidate()
	}
	d.strat.Reset()

	eBefore, hBefore := d.cap.Energy(), d.period.HarvestedE
	cycBefore := d.cycles
	restored, alive, err := d.restoreCheckpoint()
	d.period.RestoreCycles += d.cycles - cycBefore
	d.period.RestoreE += eBefore + (d.period.HarvestedE - hBefore) - d.cap.Energy()
	if err != nil {
		return false, err
	}
	if !alive {
		return false, nil // died restoring; retry next period
	}
	if !restored {
		*d.core = cpu.Core{}
		if err := d.mem.WriteSRAMImage(d.cfg.Prog.SRAMImage); err != nil {
			return false, err
		}
	}
	// The PC this period resumes at is the atomic-region entry the
	// NoProgressError report names, matching the static verifier.
	d.bootPC = d.core.PC

	if p := d.strat.Boot(d); p != nil {
		if !d.backup(*p) {
			return false, nil
		}
	}
	return true, nil
}

// previewAccess computes the memory access the instruction would make
// with the current register state.
func previewAccess(in isa.Instr, c *cpu.Core) AccessPreview {
	if !in.Op.IsLoad() && !in.Op.IsStore() {
		return AccessPreview{}
	}
	size := uint8(4)
	if in.Op == isa.LB || in.Op == isa.LBU || in.Op == isa.SB {
		size = 1
	}
	return AccessPreview{
		Valid: true,
		Addr:  c.Regs[in.Rs1] + uint32(in.Imm),
		Size:  size,
		Store: in.Op.IsStore(),
	}
}

// Batched-engine tuning. The batch budget is the distance to the
// nearest *event* — strategy trigger, possible brown-out, scheduled
// fault, run limit — so inside a batch nothing can observably happen
// and the engine may execute instructions back to back.
const (
	// minBatchCycles is the smallest budget worth batching: below it the
	// engine runs the exact per-step protocol. It must comfortably
	// exceed the ≤ 7-cycle instruction overshoot so per-step territory
	// is entered strictly before any event can fire.
	minBatchCycles = 32
	// maxBatchCycles caps one batch (and the record sink it fills) so a
	// long event-free stretch still settles accounting and polls the
	// interrupt hook at a bounded latency.
	maxBatchCycles = 1 << 14
	// cutGuard is slack between a batch's end and the next scheduled
	// power cut; it must exceed the instruction overshoot so the cut
	// always fires in per-step mode, on the exact instruction the
	// reference engine kills.
	cutGuard = 8
)

// activePhase executes instructions until power failure, completion, or
// a cycle budget stop. A nil error covers all three; errors are
// program/simulator bugs. The work happens in one of two engines that
// produce byte-identical results (see TestEngineEquivalence): the
// reference per-instruction loop, and the batched event-horizon loop.
// The cache model is inherently per-access, so cache configs always run
// the reference loop.
func (d *Device) activePhase() error {
	if d.engine == EngineReference || d.cache != nil {
		return d.activePhaseReference()
	}
	return d.activePhaseBatched()
}

// activePhaseReference is the original per-instruction loop, kept as
// the trust anchor the batched engine is proven against.
func (d *Device) activePhaseReference() error {
	code := d.cfg.Prog.Code
	for d.cycles < d.cfg.MaxCycles {
		if int(d.core.PC) >= len(code) {
			return &ProgramError{PC: d.core.PC, Program: d.cfg.Prog.Name}
		}
		done, err := d.stepOnce(code)
		if done || err != nil {
			return err
		}
	}
	return nil
}

// stepOnce runs the full per-instruction protocol for one instruction:
// PreStep, execute, settle accounting, halt handling, PostStep. It
// reports done when the active phase must end (power failure, halt,
// post-backup sleep) — with a nil error in all three cases.
func (d *Device) stepOnce(code []isa.Instr) (done bool, err error) {
	in := code[d.core.PC]

	// Pre-instruction backup (idempotency violations etc.).
	if p := d.strat.PreStep(d, in, previewAccess(in, d.core)); p != nil {
		if !d.backup(*p) {
			return true, nil // power failed during backup
		}
		if p.ThenSleep {
			return true, d.idleToDeath()
		}
	}

	st, err := d.core.Step(code, d.mem)
	if err != nil {
		return true, err
	}
	if st.HasAccess && st.Access.Store && d.mem.Region(st.Access.Addr) == mem.RegionFRAM {
		d.framWrites++
	}
	cycles := st.Cycles
	if d.cache != nil && st.HasAccess {
		cycles += d.cachePenalty(st.Access)
	}
	eBefore, hBefore := d.cap.Energy(), d.period.HarvestedE
	alive := d.consume(cycles, st.Class)
	d.sinceCommit += cycles
	d.execSinceBkup += cycles
	d.pendingE += eBefore + (d.period.HarvestedE - hBefore) - d.cap.Energy()
	if d.rec != nil {
		if st.HasSys && st.Sys == isa.SysSense {
			d.rec.sense(d.core.SenseSeq-1, d.cycles, int32(len(d.result.Periods)))
		} else if st.HasAccess && st.Access.Store && d.rec.wantsStore(st.Access.Addr) {
			d.rec.store(st.Access.Addr, d.cycles)
		}
	}
	if err := d.pollInterrupt(cycles); err != nil {
		return true, err
	}
	if !alive {
		return true, nil // power failure: pending work becomes dead
	}

	if st.HasSys && st.Sys == isa.SysHalt {
		if d.backup(d.strat.FinalPayload(d)) {
			d.halted = true
		}
		return true, nil // committed → done; failed → retry next period
	}

	// Post-instruction backup (timers, checkpoint sites, task ends).
	if p := d.strat.PostStep(d, st); p != nil {
		if !d.backup(*p) {
			return true, nil
		}
		if p.ThenSleep {
			return true, d.idleToDeath()
		}
	}
	return false, nil
}

// activePhaseBatched is the event-horizon engine. Each iteration sizes
// a batch that provably contains no event — the strategy's declared
// horizon, the conservative brown-out horizon, the next scheduled fault
// and the run limits all lie at or beyond its end — executes it, then
// delivers the single synthesized PostStep the Horizon contract
// promises. On a clean bench supply the batch runs in fusedBatch,
// which interleaves the per-step energy sequence with interpretation
// (fused.go); under a harvester or fault injector it runs in one
// cpu.StepN call whose records settleBatch replays through the full
// consume() protocol. Both settle modes reproduce the reference
// engine's floating-point sequence bit for bit. When the nearest
// event is closer than minBatchCycles the engine falls back to
// stepOnce, so every event (trigger, brown-out, power cut, halt)
// fires in exact per-step mode on the same instruction as the
// reference engine.
func (d *Device) activePhaseBatched() error {
	code := d.cfg.Prog.Code
	// The fused settle path is reserved for the unobserved fast case:
	// with a recorder attached the engine takes the StepN+settleBatch
	// route, whose per-step records carry the store addresses and sense
	// boundaries the observation log needs. Results are identical either
	// way (the equivalence oracle proves the two settle modes
	// byte-identical); only the recording fidelity differs.
	fused := d.cfg.Harvester == nil && d.inj == nil && d.rec == nil
	for d.cycles < d.cfg.MaxCycles {
		if int(d.core.PC) >= len(code) {
			return &ProgramError{PC: d.core.PC, Program: d.cfg.Prog.Name}
		}
		budget := d.batchBudget()
		if budget < minBatchCycles {
			done, err := d.stepOnce(code)
			if done || err != nil {
				return err
			}
			continue
		}
		if d.obs != nil {
			d.emit(obsv.EvBatchHorizon, budget, d.strat.Horizon(d), 0)
		}

		var b cpu.Batch
		var stepErr error
		if fused {
			b, stepErr = d.fusedBatch(code, budget)
		} else {
			if d.sink.Recs == nil {
				d.sink.Recs = make([]cpu.StepRec, 0, maxBatchCycles)
			}
			d.sink.Recs = d.sink.Recs[:0]
			b, stepErr = d.core.StepN(code, d.mem, budget, d.stopSys, &d.sink)
			if b.Steps > 0 {
				if err := d.settleBatch(d.sink.Recs); err != nil {
					return err
				}
				// A recorder forces SysSense into the stop mask, so a
				// batch whose final instruction read an input ends here
				// with the exact per-instruction cycle position.
				if d.rec != nil && b.HasSys && b.Sys == isa.SysSense {
					d.rec.sense(d.core.SenseSeq-1, d.cycles, int32(len(d.result.Periods)))
				}
			}
		}
		if b.Steps > 0 {
			if err := d.pollInterrupt(b.Cycles); err != nil {
				return err
			}
		}
		if stepErr != nil {
			// The failing instruction mutated nothing (cpu.Step is
			// transactional), so the settled prefix leaves the device
			// exactly where the reference engine errors out.
			return stepErr
		}

		if d.core.Halted {
			if d.backup(d.strat.FinalPayload(d)) {
				d.halted = true
			}
			return nil
		}

		// One synthesized PostStep per batch (see Strategy.Horizon).
		if p := d.strat.PostStep(d, cpu.Step{Cycles: b.Cycles, Sys: b.Sys, HasSys: b.HasSys}); p != nil {
			if !d.backup(*p) {
				return nil
			}
			if p.ThenSleep {
				return d.idleToDeath()
			}
		}
	}
	return nil
}

// batchBudget returns how many cycles the engine may execute before the
// next possible event. Anything below minBatchCycles means "per-step
// territory".
func (d *Device) batchBudget() uint64 {
	// Strategy horizon first: it is cheap, and a per-step strategy
	// (Horizon 1) must not pay for the energy math below.
	budget := d.strat.Horizon(d)
	if budget < minBatchCycles {
		return budget
	}
	// Conservative brown-out horizon: worst active class, no harvest
	// credit, slack for float drift — the supply cannot die inside it.
	if h := d.CyclesAboveEnergy(0); h < budget {
		budget = h
	}
	if budget < minBatchCycles {
		return budget
	}
	// Run limit: an instruction starts only while cycles < MaxCycles,
	// which is exactly the reference loop's per-step condition.
	if rem := d.cfg.MaxCycles - d.cycles; rem < budget {
		budget = rem
	}
	if budget > maxBatchCycles {
		budget = maxBatchCycles
	}
	// Scheduled supply faults: stop the batch short of the next cut so
	// the cut fires in per-step mode on the reference instruction.
	if d.inj != nil {
		if cut := d.inj.NextPowerCut(); cut != NoPowerCut {
			if cut <= d.cycles+cutGuard {
				return 0
			}
			if rem := cut - d.cycles - cutGuard; rem < budget {
				budget = rem
			}
		}
	}
	return budget
}

// settleBatch applies a StepN batch's accounting by replaying the
// recorded per-step sequence through the full consume() protocol in
// the reference engine's exact order — FRAM store count, then energy
// draw (with harvest credit and fault checks), then the progress
// counters, step by step — so every floating-point operation happens
// with the same operands and in the same association as the
// per-instruction loop. Clean bench supplies never come here: their
// batches run fused with interpretation (fused.go).
//
// The batch budget guarantees the supply survives every step (see
// batchBudget); a mid-batch death would mean instructions executed that
// the reference engine never ran, so it is reported as an engine bug
// rather than a power failure.
func (d *Device) settleBatch(recs []cpu.StepRec) error {
	var total uint64
	for _, r := range recs {
		if r.Flags&cpu.RecStore != 0 && d.mem.Region(r.Addr) == mem.RegionFRAM {
			d.framWrites++
		}
		n := uint64(r.Cycles)
		eBefore, hBefore := d.cap.Energy(), d.period.HarvestedE
		alive := d.consume(n, energy.InstrClass(r.Class))
		d.pendingE += eBefore + (d.period.HarvestedE - hBefore) - d.cap.Energy()
		total += n
		if d.rec != nil && r.Flags&cpu.RecStore != 0 && d.rec.wantsStore(r.Addr) {
			d.rec.store(r.Addr, d.cycles)
		}
		if !alive {
			return errBatchOverrun()
		}
	}
	d.sinceCommit += total
	d.execSinceBkup += total
	return nil
}

// cachePenalty simulates the access in the cache model and returns the
// stall cycles it adds: a block fill from FRAM on a miss, plus a
// writeback on a dirty eviction.
func (d *Device) cachePenalty(acc cpu.Access) uint64 {
	hit, writeback := d.cache.Access(acc.Addr, acc.Store)
	var extra uint64
	if !hit {
		extra += d.transferCycles(d.cache.BlockSize(), d.cfg.SigmaR)
	}
	if writeback {
		extra += d.transferCycles(d.cache.BlockSize(), d.cfg.SigmaB)
	}
	return extra
}

// backup writes a checkpoint with the given payload through the
// two-phase commit protocol (ckpt.go). It returns false if the supply
// died before the commit record landed; a torn or incomplete write
// leaves the previous checkpoint's slot intact, so a failed backup is
// recoverable by construction rather than by fiat.
func (d *Device) backup(p Payload) bool {
	if d.obs != nil {
		d.emit(obsv.EvCheckpointBegin, uint64(p.Bytes()), 0, 0)
	}
	eBefore, hBefore := d.cap.Energy(), d.period.HarvestedE
	cycBefore := d.cycles
	d.bkupStart = cycBefore
	ok := d.writeCheckpoint(p)
	bkE := eBefore + (d.period.HarvestedE - hBefore) - d.cap.Energy()
	d.period.BackupCycles += d.cycles - cycBefore
	d.period.BackupE += bkE
	if !ok {
		if d.obs != nil {
			d.emit(obsv.EvCheckpointFail, uint64(p.Bytes()), 0, bkE)
		}
		return false
	}

	if p.FlushCache && d.cache != nil {
		d.cache.FlushDirty()
	}

	// Uncommitted execution becomes forward progress.
	d.period.ProgressCycles += d.sinceCommit
	d.period.ProgressE += d.pendingE
	d.sinceCommit = 0
	d.pendingE = 0
	d.period.Backups++
	d.period.BackupIntervals = append(d.period.BackupIntervals, d.execSinceBkup)
	d.period.AppBytes = append(d.period.AppBytes, p.AppBytes)
	d.period.PayloadBytes = append(d.period.PayloadBytes, p.Bytes())
	if d.obs != nil {
		d.emit(obsv.EvCheckpointCommit, uint64(p.Bytes()), d.execSinceBkup, bkE)
	}
	d.execSinceBkup = 0
	return true
}

// idleToDeath burns idle cycles until the supply dies — the
// single-backup sleep after a Hibernus-style checkpoint. A harvester
// that sustains the idle draw would otherwise spin to MaxCycles, so
// the sleep polls the interrupt/deadline check too.
func (d *Device) idleToDeath() error {
	if d.obs != nil {
		d.emit(obsv.EvSleep, 0, 0, 0)
	}
	const chunk = pollCreditIdle
	for d.cycles < d.cfg.MaxCycles {
		if err := d.pollInterrupt(chunk); err != nil {
			return err
		}
		eBefore, hBefore := d.cap.Energy(), d.period.HarvestedE
		alive := d.consume(chunk, energy.ClassIdle)
		d.period.IdleCycles += chunk
		d.period.IdleE += eBefore + (d.period.HarvestedE - hBefore) - d.cap.Energy()
		if !alive {
			return nil
		}
	}
	return nil
}

// RunContinuous executes prog on an uninterrupted supply and returns its
// output stream and executed cycles — the oracle intermittent runs are
// checked against. maxSteps bounds runaway programs.
func RunContinuous(prog *asm.Program, sramSize, framSize int, maxSteps uint64) ([]uint32, uint64, error) {
	if sramSize == 0 {
		sramSize = 8 * 1024
	}
	if framSize == 0 {
		framSize = 256 * 1024
	}
	ms, err := mem.NewSystem(sramSize, framSize)
	if err != nil {
		return nil, 0, err
	}
	if err := ms.WriteSRAMImage(prog.SRAMImage); err != nil {
		return nil, 0, err
	}
	if err := ms.WriteFRAMImage(prog.FRAMImage); err != nil {
		return nil, 0, err
	}
	c := &cpu.Core{}
	var cycles uint64
	for steps := uint64(0); !c.Halted; steps++ {
		if steps >= maxSteps {
			return nil, 0, fmt.Errorf("device: %q did not halt within %d steps", prog.Name, maxSteps)
		}
		st, err := c.Step(prog.Code, ms)
		if err != nil {
			return nil, 0, err
		}
		cycles += st.Cycles
	}
	return append([]uint32(nil), c.OutBuf...), cycles, nil
}
