package device

import (
	"math"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
)

// TestDeviceAccessors exercises the inspection surface strategies use.
func TestDeviceAccessors(t *testing.T) {
	prog := loopProgram(t, 100, asm.SRAM)
	cfg := fixedConfig(t, prog, 1e-6)
	d, err := New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cfg().Prog != prog {
		t.Error("Cfg lost the program")
	}
	if d.Cfg().SigmaB != 2 || d.Cfg().SigmaR != 2 {
		t.Error("defaults not applied in Cfg")
	}
	if d.Voltage() != 0 {
		t.Error("fresh device should start discharged")
	}
	if d.StoredEnergy() != 0 {
		t.Error("no stored energy before charging")
	}
	full := d.FullSupply()
	if math.Abs(full-1e-6) > 1e-12 {
		t.Errorf("FullSupply %g, want 1e-6", full)
	}
	if d.HasCheckpoint() {
		t.Error("checkpoint before any backup")
	}
	if d.ExecSinceBackup() != 0 {
		t.Error("exec counter nonzero before run")
	}
	// footprint is the word-aligned SRAM image (count word = 4 bytes)
	if got := d.SRAMFootprint(); got != 4 {
		t.Errorf("footprint %d, want 4", got)
	}
	// backup cost: 76 bytes at σ_B=2 → 38 mem cycles + no surcharge
	p := Payload{ArchBytes: cpu.ArchStateBytes, AppBytes: 4}
	wantCost := 38 * energy.MSP430Power().EnergyPerCycle(energy.ClassMem)
	if got := d.BackupCost(p); math.Abs(got-wantCost) > 1e-15 {
		t.Errorf("BackupCost %g, want %g", got, wantCost)
	}
	if got := d.BackupCost(Payload{}); got != 0 {
		t.Errorf("empty payload cost %g", got)
	}
}

// TestResultAccessorsAfterRun covers the derived statistics on a real
// run.
func TestResultAccessorsAfterRun(t *testing.T) {
	prog := loopProgram(t, 3000, asm.SRAM)
	e := 2500 * energy.MSP430Power().EnergyPerCycle(energy.ClassALU)
	d, err := New(fixedConfig(t, prog, e), intervalStrategy{k: 400})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredEpsilon() <= 0 {
		t.Error("no measured ε")
	}
	if res.MeanSupply() <= 0 {
		t.Error("no mean supply")
	}
	if len(res.PayloadSamples()) != res.Backups() {
		t.Error("payload samples should match backup count")
	}
	if res.MeanTauD() < 0 {
		t.Error("negative τ_D")
	}
	for _, s := range res.AlphaBSamples() {
		if s < 0 {
			t.Error("negative α_B sample")
		}
	}
	// empty result edge cases
	empty := &Result{}
	if empty.MeasuredProgress() != 0 || empty.MeanSupply() != 0 || empty.MeasuredEpsilon() != 0 {
		t.Error("empty result should produce zeros")
	}
	if empty.CycleProgress() != 0 {
		t.Error("empty cycle progress")
	}
}
