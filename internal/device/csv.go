package device

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WritePeriodsCSV emits one row per active period with the full
// cycle/energy split — the raw material for external analysis tooling
// (ehsim's -periods flag).
func (r *Result) WritePeriodsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"period", "supply_j", "harvested_j", "charge_s",
		"progress_cycles", "dead_cycles", "backup_cycles", "restore_cycles", "idle_cycles",
		"progress_j", "dead_j", "backup_j", "restore_j", "idle_j",
		"backups",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for i := range r.Periods {
		p := &r.Periods[i]
		rec := []string{
			strconv.Itoa(i), f(p.SupplyE), f(p.HarvestedE), f(p.ChargeTimeS),
			u(p.ProgressCycles), u(p.DeadCycles), u(p.BackupCycles), u(p.RestoreCycles), u(p.IdleCycles),
			f(p.ProgressE), f(p.DeadE), f(p.BackupE), f(p.RestoreE), f(p.IdleE),
			strconv.Itoa(p.Backups),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
