package device

// obslog.go — the observation recorder behind the formal correctness
// oracle (internal/faults). When Config.Record is set, the device logs
// the run's externally meaningful observation sequence: every executed
// SENSE input read with its consumed-cycle timestamp, every checkpoint
// commit with the output words it persisted and the input observations
// it covered, and the restore/cold-start lineage of every boot. The
// oracle replays this log against the continuous-execution semantics to
// detect violations (torn state, replayed inputs, stale outputs,
// timeliness) that the final-memory check cannot see.
//
// Attaching a recorder never changes simulation results: the recorder
// is written to, never read, by the engines. It does force SysSense
// into the batch-stop mask and disables the fused settle path so every
// input read gets an exact per-instruction timestamp — both are
// result-neutral by the engine equivalence contract (the reference
// engine delivers a PostStep after every instruction anyway, and the
// StepN settle path is proven byte-identical to the fused one). A nil
// recorder costs the usual single nil check per emission site.

// obsLogMaxRecords bounds each record slice so a pathological run
// (thousands of replayed periods) cannot grow the log without limit.
// Hitting the bound sets Truncated; classification still runs on the
// recorded prefix.
const obsLogMaxRecords = 1 << 19

// SenseObs is one executed SENSE instruction: the input read of
// sequence index Index at consumed-cycle position Cycle during boot
// Boot. Committed is set when a later checkpoint commit persisted the
// execution window containing it; Commit then indexes ObsLog.Commits.
type SenseObs struct {
	Index     uint32
	Cycle     uint64
	Boot      int32
	Committed bool
	Commit    int
}

// CommitObs is one landed checkpoint commit: its sequence number, the
// consumed-cycle span of the backup ([Start, Cycle]), the boot it
// happened in, the output words it appended to the committed log at
// position OutBase, and the indices (into ObsLog.Senses) of the input
// observations its execution window covered.
type CommitObs struct {
	Seq     uint64
	Start   uint64
	Cycle   uint64
	Boot    int32
	OutBase int
	Out     []uint32
	Senses  []int
}

// BootObs is one power-on: either a restore of commit RestoredSeq
// (with the architectural sense counter it reinstated) or a cold start
// from the program image.
type BootObs struct {
	Cycle       uint64
	Boot        int32
	Cold        bool
	RestoredSeq uint64
	SenseSeq    uint32
}

// HazardStore is a store into one of the watched hazard words — the
// WAR-frontier hint the adversarial fault campaign bites on.
type HazardStore struct {
	Addr  uint32
	Cycle uint64
}

// ObsLog records the observation sequence of one run. Zero value is
// ready to use; attach via Config.Record. The same recorder may be
// reused across sequential runs (the device resets it at Run start).
type ObsLog struct {
	// HazardWords, when non-nil, selects word-aligned data addresses
	// whose stores are recorded as HazardStores (typically the static
	// analyzer's WAR hazard set). Nil disables store recording.
	HazardWords map[uint32]struct{}

	Boots        []BootObs
	Senses       []SenseObs
	Commits      []CommitObs
	HazardStores []HazardStore
	// Truncated reports that a record slice hit its growth bound and
	// later entries of that kind were dropped.
	Truncated bool

	// window indexes the Senses executed since the last commit in the
	// current boot — the observations the next commit will cover.
	window []int
}

// reset clears the log for a fresh run, keeping the HazardWords filter.
func (l *ObsLog) reset() {
	l.Boots = l.Boots[:0]
	l.Senses = l.Senses[:0]
	l.Commits = l.Commits[:0]
	l.HazardStores = l.HazardStores[:0]
	l.Truncated = false
	l.window = l.window[:0]
}

// wantsStore reports whether stores to addr are being watched.
func (l *ObsLog) wantsStore(addr uint32) bool {
	if l.HazardWords == nil {
		return false
	}
	_, ok := l.HazardWords[addr&^3]
	return ok
}

func (l *ObsLog) sense(index uint32, cycle uint64, boot int32) {
	if len(l.Senses) >= obsLogMaxRecords {
		l.Truncated = true
		return
	}
	l.window = append(l.window, len(l.Senses))
	l.Senses = append(l.Senses, SenseObs{Index: index, Cycle: cycle, Boot: boot, Commit: -1})
}

func (l *ObsLog) store(addr uint32, cycle uint64) {
	if len(l.HazardStores) >= obsLogMaxRecords {
		l.Truncated = true
		return
	}
	l.HazardStores = append(l.HazardStores, HazardStore{Addr: addr, Cycle: cycle})
}

// commit closes the current execution window: the senses observed since
// the previous commit in this boot become committed observations of the
// new record.
func (l *ObsLog) commit(seq, start, cycle uint64, boot int32, outBase int, out []uint32) {
	if len(l.Commits) >= obsLogMaxRecords {
		l.Truncated = true
		l.window = l.window[:0]
		return
	}
	co := CommitObs{
		Seq: seq, Start: start, Cycle: cycle, Boot: boot,
		OutBase: outBase,
	}
	if len(out) > 0 {
		co.Out = append([]uint32(nil), out...)
	}
	if len(l.window) > 0 {
		co.Senses = append([]int(nil), l.window...)
	}
	idx := len(l.Commits)
	for _, s := range l.window {
		l.Senses[s].Committed = true
		l.Senses[s].Commit = idx
	}
	l.window = l.window[:0]
	l.Commits = append(l.Commits, co)
}

// powerFail discards the current execution window: its observations
// stay in the log (they were executed) but were never committed.
func (l *ObsLog) powerFail() {
	l.window = l.window[:0]
}

func (l *ObsLog) bootRestore(cycle uint64, boot int32, seq uint64, senseSeq uint32) {
	if len(l.Boots) >= obsLogMaxRecords {
		l.Truncated = true
		return
	}
	l.Boots = append(l.Boots, BootObs{Cycle: cycle, Boot: boot, RestoredSeq: seq, SenseSeq: senseSeq})
}

func (l *ObsLog) bootCold(cycle uint64, boot int32) {
	if len(l.Boots) >= obsLogMaxRecords {
		l.Truncated = true
		return
	}
	l.Boots = append(l.Boots, BootObs{Cycle: cycle, Boot: boot, Cold: true})
}
