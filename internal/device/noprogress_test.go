package device

import (
	"errors"
	"strings"
	"testing"

	"ehmodel/internal/asm"
	"ehmodel/internal/energy"
)

// livelockConfig is a fixed supply too small for the program to reach
// its first backup: every charge replays the same doomed prefix.
func livelockConfig(t *testing.T, prog *asm.Program, cycles float64) Config {
	t.Helper()
	pm := energy.MSP430Power()
	cfg := fixedConfig(t, prog, cycles*pm.EnergyPerCycle(energy.ClassALU))
	cfg.MaxPeriods = 10000
	cfg.DetectLivelock = true
	return cfg
}

// TestDetectLivelock exercises the dynamic no-progress diagnosis: with
// detection on, a repeating doomed charge fails fast with the region
// entry, death PC and cycles-since-commit; with detection off, the run
// grinds to MaxPeriods as before.
func TestDetectLivelock(t *testing.T) {
	prog := loopProgram(t, 1000, asm.SRAM)
	d, err := New(livelockConfig(t, prog, 8), nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	var np *NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("want NoProgressError, got %v", err)
	}
	if !np.Livelock {
		t.Fatalf("want a livelock diagnosis, got %+v", np)
	}
	// Exactly-repeating periods are provable after two observations.
	if np.Periods < 2 || np.Periods > 3 {
		t.Errorf("detected after %d periods, want 2–3", np.Periods)
	}
	if np.SinceCommit == 0 {
		t.Error("diagnosis lost the cycles-since-commit figure")
	}
	// The region entry names where every doomed charge starts: with no
	// checkpoint ever taken, that is the program entry.
	if np.RegionEntry != 0 {
		t.Errorf("region entry = %d, want 0 (cold boot)", np.RegionEntry)
	}
	msg := np.Error()
	for _, want := range []string{"livelock", "region entry=0", "PC", "cycles since last commit"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q lacks %q", msg, want)
		}
	}

	// Default-off: the same config without detection keeps the old
	// grind-to-the-limit behavior.
	cfg := livelockConfig(t, prog, 8)
	cfg.DetectLivelock = false
	d, err = New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatalf("detection off must not fail the run: %v", err)
	}
	if res.Completed || len(res.Periods) != cfg.MaxPeriods {
		t.Fatalf("want a full %d-period grind, got completed=%v periods=%d",
			cfg.MaxPeriods, res.Completed, len(res.Periods))
	}
}

// TestDetectLivelockSparesProgress makes sure the detector never trips
// on a run that is actually progressing: the same program with a
// per-charge budget big enough to advance commits periodically and
// completes.
func TestDetectLivelockSparesProgress(t *testing.T) {
	prog := loopProgram(t, 200, asm.SRAM)
	cfg := livelockConfig(t, prog, 600)
	d, err := New(cfg, intervalStrategy{k: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		t.Fatalf("progressing run diagnosed as livelock: %v", err)
	}
	if !res.Completed {
		t.Fatalf("did not complete: %d periods", len(res.Periods))
	}
}

// TestDetectLivelockIgnoresHarvester documents the detector's guard: a
// harvester-driven supply recharges differently every period, so an
// exact repeat is not provably doomed and detection stays out of the
// way (the stall heuristic in Run handles that regime).
func TestDetectLivelockIgnoresHarvester(t *testing.T) {
	prog := loopProgram(t, 50, asm.SRAM)
	cfg := livelockConfig(t, prog, 8)
	d, err := New(cfg, nullStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.checkLivelock(); err != nil {
		t.Fatalf("empty history must not diagnose: %v", err)
	}
	d.cfg.Harvester = &energy.Harvester{}
	d.result.Periods = append(d.result.Periods, PeriodStats{DeadCycles: 8}, PeriodStats{DeadCycles: 8})
	d.repeatArmed = true
	if err := d.checkLivelock(); err != nil {
		t.Fatalf("harvester-driven supply must not diagnose livelock: %v", err)
	}
}
