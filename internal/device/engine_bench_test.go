package device_test

import (
	"encoding/json"
	"os"
	"testing"

	"ehmodel/internal/cpu"
	"ehmodel/internal/device"
	"ehmodel/internal/isa"
	"ehmodel/internal/mem"
	"ehmodel/internal/strategy"
	"ehmodel/internal/workload"
)

// The engine macro benchmark: the §V-A counter workload under the
// timer strategy on a bench supply — the configuration the paper's
// Fig. 5 validation sweeps hammer thousands of times, and the
// configuration the batched engine's ≥3× speedup target is measured
// on. One benchmark op is one complete intermittent run.

// Macro parameters: a generously sized bench capacitor (600k cycles of
// ALU energy per period, a handful of power cycles per run) under a
// wide watchdog window (τ_B 50k). This is the regime the engine
// refactor targets — long event-free stretches — while the brown-outs
// keep the charge/boot/restore path in the measurement.
const (
	macroPeriodCycles = 600_000
	macroTauB         = 50_000
)

func benchmarkEngine(b *testing.B, eng device.Engine) {
	w, ok := workload.Get("counter")
	if !ok {
		b.Fatal("counter workload missing")
	}
	prog, err := w.Build(workload.Options{Scale: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchEquivCfg(prog, macroPeriodCycles)
		cfg.Engine = eng
		d, err := device.New(cfg, strategy.NewTimer(macroTauB, 0.1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("macro run did not complete")
		}
		cycles += res.TotalCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkEngineReference(b *testing.B) { benchmarkEngine(b, device.EngineReference) }
func BenchmarkEngineBatched(b *testing.B)   { benchmarkEngine(b, device.EngineBatched) }

// benchmarkStepN is the interpreter micro-benchmark behind the
// zero-allocation row of BENCH_core.json: one op is one cpu.StepN call
// over a 16 Ki-cycle budget of the counter hot loop into a reused
// sink. Its allocs/op must stay at zero — the batched engine's
// hot-loop contract (pinned hard by cpu.TestStepNZeroAllocs).
func benchmarkStepN(b *testing.B) {
	w, ok := workload.Get("counter")
	if !ok {
		b.Fatal("counter workload missing")
	}
	prog, err := w.Build(workload.Options{Scale: 1 << 16}) // effectively endless; the budget bounds work
	if err != nil {
		b.Fatal(err)
	}
	m, err := mem.NewSystem(8*1024, 256*1024)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.WriteSRAMImage(prog.SRAMImage); err != nil {
		b.Fatal(err)
	}
	if err := m.WriteFRAMImage(prog.FRAMImage); err != nil {
		b.Fatal(err)
	}
	c := &cpu.Core{}
	sink := &cpu.BatchSink{Recs: make([]cpu.StepRec, 0, 1<<14)}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		sink.Recs = sink.Recs[:0]
		bt, err := c.StepN(prog.Code, m, 1<<14, isa.SysMask(0), sink)
		if err != nil {
			b.Fatal(err)
		}
		cycles += bt.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// benchRecord is one row of BENCH_core.json.
type benchRecord struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

// TestWriteBenchJSON runs the engine benchmarks programmatically and
// writes BENCH_core.json for CI artifacts and the committed baseline.
// It is gated behind EHSIM_BENCH_OUT so ordinary test runs never spend
// benchmark time; `make bench` sets the variable.
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("EHSIM_BENCH_OUT")
	if out == "" {
		t.Skip("set EHSIM_BENCH_OUT=path to write the benchmark JSON")
	}

	run := func(name string, fn func(*testing.B)) benchRecord {
		r := testing.Benchmark(fn)
		rec := benchRecord{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v, ok := r.Extra["simcycles/s"]; ok {
			rec.SimCyclesPerSec = v
		}
		return rec
	}

	ref := run("engine-macro/counter-bench/reference", BenchmarkEngineReference)
	bat := run("engine-macro/counter-bench/batched", BenchmarkEngineBatched)
	stepn := run("micro/cpu-stepn-16k", benchmarkStepN)
	if stepn.AllocsPerOp != 0 {
		t.Errorf("cpu.StepN allocs/op = %d, want 0", stepn.AllocsPerOp)
	}

	doc := struct {
		Description string        `json:"description"`
		Command     string        `json:"command"`
		Benchmarks  []benchRecord `json:"benchmarks"`
		Speedup     float64       `json:"speedup_batched_over_reference"`
	}{
		Description: "Execution-engine benchmarks. engine-macro: one op is a complete intermittent run of the counter workload (Scale 20) under the timer strategy on a bench supply. micro/cpu-stepn-16k: one op is one cpu.StepN call over a 16Ki-cycle budget (allocs_per_op must be 0). simcycles/s is simulated cycles retired per wall-clock second.",
		Command:     "make bench",
		Benchmarks:  []benchRecord{ref, bat, stepn},
	}
	if ref.SimCyclesPerSec > 0 {
		doc.Speedup = bat.SimCyclesPerSec / ref.SimCyclesPerSec
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("reference: %.0f simcycles/s, batched: %.0f simcycles/s, speedup %.2fx -> %s",
		ref.SimCyclesPerSec, bat.SimCyclesPerSec, doc.Speedup, out)
}
