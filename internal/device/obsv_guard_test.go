package device_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"ehmodel/internal/obsv"
)

// TestObservabilityDisabledCost is the zero-cost contract's enforcement
// (see observe.go): with no tracer attached, the observability layer
// must add nothing — no allocations anywhere in a run, and no measurable
// slowdown on the committed BENCH_core.json baseline.
//
// The allocation half always runs: allocs/op is deterministic, so any
// emission site that builds an Event on the disabled path fails the
// test on every machine. The ns/op half (≤2% over the committed
// baseline) only runs under EHSIM_BENCH_GUARD=1 — wall-clock baselines
// are machine-specific, so `make bench-guard` (and the CI job) opt in
// on the hardware the baseline was recorded on.
func TestObservabilityDisabledCost(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard; skipped in -short")
	}

	baseline := readBenchBaseline(t, "../../BENCH_core.json")

	checkNs := os.Getenv("EHSIM_BENCH_GUARD") == "1"
	if !checkNs {
		t.Log("EHSIM_BENCH_GUARD unset: checking allocs/op only (ns/op baselines are machine-specific)")
	}

	cases := []struct {
		name  string
		bench func(*testing.B)
	}{
		{"engine-macro/counter-bench/reference", BenchmarkEngineReference},
		{"engine-macro/counter-bench/batched", BenchmarkEngineBatched},
		{"micro/cpu-stepn-16k", benchmarkStepN},
	}
	for _, c := range cases {
		base, ok := baseline[c.name]
		if !ok {
			t.Fatalf("BENCH_core.json has no row %q", c.name)
		}
		r := testing.Benchmark(c.bench)
		if got := r.AllocsPerOp(); got > base.AllocsPerOp {
			t.Errorf("%s: allocs/op = %d, baseline %d — the disabled observability path must not allocate",
				c.name, got, base.AllocsPerOp)
		}
		if checkNs {
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if limit := base.NsPerOp * 1.02; ns > limit {
				t.Errorf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than 2%%",
					c.name, ns, base.NsPerOp)
			} else {
				t.Logf("%s: %.0f ns/op (baseline %.0f, +2%% limit %.0f)", c.name, ns, base.NsPerOp, limit)
			}
		}
	}
}

// readBenchBaseline loads the committed benchmark rows keyed by name.
func readBenchBaseline(t *testing.T, path string) map[string]benchRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading benchmark baseline: %v", err)
	}
	var doc struct {
		Benchmarks []benchRecord `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	out := make(map[string]benchRecord, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// TestSpanDisabledCost extends the zero-cost contract to the request
// tracing layer (obsv.StartSpan and friends): with no trace attached to
// the context, the entire span round trip — start, attributes, finish —
// must allocate nothing and return the context unchanged. The ns/op half
// of the contract is covered by the engine benchmarks above unchanged:
// span code never enters the engine's hot loops (it brackets whole
// simulation cells, one call per device.Run), so the committed
// BENCH_core.json baselines bound its drift too.
func TestSpanDisabledCost(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sctx, sp := obsv.StartSpan(ctx, "cell")
		if sctx != ctx {
			t.Fatal("disabled StartSpan rewrote the context")
		}
		sp.SetAttr("label", "x")
		sp.SetUint("simcycles", 1)
		sp.SetBool("completed", true)
		sp.Finish()
		obsv.TraceFrom(ctx)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}
