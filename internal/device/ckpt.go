package device

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ehmodel/internal/cpu"
	"ehmodel/internal/energy"
	"ehmodel/internal/isa"
	"ehmodel/internal/obsv"
)

// ErrUnrecoverable is the sentinel a Run error matches (errors.Is) when
// the honest restore path detects that recovery would be crash-
// inconsistent: the only restorable state is older than the newest
// commit, and nonvolatile data was written after it. Checkpoints roll
// back registers and SRAM, but FRAM stores are permanent — replaying
// the gap would re-execute against "future" memory and silently diverge
// from the continuous-power semantics. Failing stop with a typed error
// is the honest outcome; the crash-consistency auditor counts it as a
// detected fault, not a violation.
var ErrUnrecoverable = errors.New("device: nonvolatile state unrecoverable")

// UnrecoverableError carries the evidence behind an ErrUnrecoverable.
type UnrecoverableError struct {
	// RestoreSeq is the newest checkpoint that survived validation (0
	// when none did and the device would have to cold-start); NewestSeq
	// is the newest commit that ever landed.
	RestoreSeq, NewestSeq uint64
	// LostStores is the number of FRAM data stores performed after the
	// restore target committed — writes no rollback can undo.
	LostStores uint64
}

func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("device: nonvolatile state unrecoverable: newest surviving checkpoint seq=%d predates commit seq=%d and %d FRAM stores",
		e.RestoreSeq, e.NewestSeq, e.LostStores)
}

// Is reports ErrUnrecoverable as the sentinel this error wraps.
func (e *UnrecoverableError) Is(target error) bool { return target == ErrUnrecoverable }

// This file implements the two-phase checkpoint commit the device runs
// on its FRAM checkpoint area (energy.CheckpointArea). A backup
// serializes execution state into words, writes them to the slot *not*
// holding the current checkpoint, then writes a commit record whose CRC
// word goes last — so a power failure between any two word writes leaves
// the previous commit record (and slot) intact. The restore path
// validates the newest record's CRC and falls back to the older slot, or
// cold-starts when neither survives.
//
// Cost model: with no fault injector attached, the backup/restore energy
// sequence is byte-for-byte the pre-protocol simulator's (one modeled
// payload transfer, commit records free), so EH-model accounting is
// unchanged. With an injector attached the device charges word-granular
// payload writes plus the commit-record transfers to τ_B/τ_R, which is
// what the protocol really costs on FRAM. Output-log word writes are
// free in both modes: committed outputs are a handful of words whose
// cost the paper folds into the checkpoint payload.

// FaultInjector is the hook surface the device offers a fault-injection
// subsystem (internal/faults implements it). All methods must be
// deterministic for a given seed; a nil injector means no faults and
// legacy-identical accounting.
type FaultInjector interface {
	// BeginRun resets per-run schedule state before a device run.
	BeginRun()
	// PowerCutDue reports whether a scheduled supply fault fires at or
	// before the given consumed-cycle count. The device empties the
	// capacitor immediately, independent of the harvesting model.
	PowerCutDue(cycles uint64) bool
	// NextPowerCut returns the earliest still-pending scheduled cut as an
	// absolute consumed-cycle count, or NoPowerCut when none is pending.
	// It must not mutate injector state: the batched engine peeks at it
	// every batch to clamp the batch so the cut fires on exactly the
	// instruction the per-step engine would have killed.
	NextPowerCut() uint64
	// TearBackup returns the payload word index after which to cut power
	// during a backup of nWords words, or -1 for no injected tear.
	TearBackup(nWords int) int
	// FlipBits corrupts stored checkpoint words in place (called once
	// per word array at every restore) and returns the number of bits
	// flipped.
	FlipBits(words []uint32) int
	// ForceStale reports whether this restore must distrust the newest
	// valid slot and recover from the older one.
	ForceStale() bool
	// NaiveCommit selects the injector's validation mode: a single-slot
	// commit with no CRC check on restore — the broken protocol the
	// crash-consistency auditor must catch.
	NaiveCommit() bool
}

// NoPowerCut is the NextPowerCut result meaning no scheduled supply
// fault is pending.
const NoPowerCut = ^uint64(0)

// Checkpoint image layout (32-bit words):
//
//	w0              flags (ckptFlag*)
//	w1              modeled architectural payload bytes (Payload.ArchBytes)
//	w2              modeled application payload bytes (Payload.AppBytes)
//	w3              core PC
//	w4              core sensor sequence counter
//	w5              SRAM snapshot length in bytes (0 when not saved)
//	w6,w7           FRAM data stores performed before this commit (lo, hi)
//	w8..w8+NumRegs  register file
//	...             SRAM snapshot words (little-endian packed)
const (
	ckptFlagSRAM   = 1 << 0
	ckptFlagHalted = 1 << 1
	ckptFlagsKnown = ckptFlagSRAM | ckptFlagHalted

	ckptHeaderWords = 8 + isa.NumRegs
)

// maxModeledBytes bounds the modeled payload sizes a decoded header may
// claim, so a corrupt header cannot demand an absurd restore transfer.
const maxModeledBytes = 1 << 24

// decodedCkpt is a checkpoint image parsed back into simulator state.
type decodedCkpt struct {
	payload    Payload
	core       cpu.Core
	sram       []byte // nil when the image carries no SRAM snapshot
	framWrites uint64 // FRAM data stores performed before this commit
}

// encodeCheckpoint serializes the current execution state. The core's
// volatile output buffer is excluded: committed outputs live in the
// checkpoint area's output log, referenced by the commit record. SRAM
// snapshots cover the program's data footprint — the bytes the modeled
// AppBytes payload actually pays for — not the whole physical SRAM.
func (d *Device) encodeCheckpoint(p Payload) []uint32 {
	var sram []byte
	if p.SaveSRAM {
		sram = d.mem.SnapshotSRAM()[:d.SRAMFootprint()]
	}
	words := make([]uint32, 0, ckptHeaderWords+len(sram)/4)
	var flags uint32
	if p.SaveSRAM {
		flags |= ckptFlagSRAM
	}
	if d.core.Halted {
		flags |= ckptFlagHalted
	}
	words = append(words, flags, uint32(p.ArchBytes), uint32(p.AppBytes),
		d.core.PC, d.core.SenseSeq, uint32(len(sram)),
		uint32(d.framWrites), uint32(d.framWrites>>32))
	for _, r := range d.core.Regs {
		words = append(words, r)
	}
	for i := 0; i+4 <= len(sram); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(sram[i:]))
	}
	return words
}

// decodeCheckpoint parses an image, validating structure against the
// device's SRAM size. Errors mean the image is not a well-formed
// checkpoint — impossible for a CRC-validated slot, expected for the
// naive-commit validation mode restoring torn or corrupted state.
func decodeCheckpoint(words []uint32, wantSRAM int) (*decodedCkpt, error) {
	if len(words) < ckptHeaderWords {
		return nil, fmt.Errorf("checkpoint image %d words, need ≥ %d", len(words), ckptHeaderWords)
	}
	flags := words[0]
	if flags&^uint32(ckptFlagsKnown) != 0 {
		return nil, fmt.Errorf("checkpoint flags %#x unknown", flags)
	}
	arch, app := words[1], words[2]
	if arch > maxModeledBytes || app > maxModeledBytes {
		return nil, fmt.Errorf("checkpoint payload sizes %d/%d implausible", arch, app)
	}
	sramBytes := int(words[5])
	if flags&ckptFlagSRAM != 0 {
		if sramBytes != wantSRAM {
			return nil, fmt.Errorf("checkpoint sram snapshot %d bytes, device has %d", sramBytes, wantSRAM)
		}
	} else if sramBytes != 0 {
		return nil, fmt.Errorf("checkpoint claims %d sram bytes without the snapshot flag", sramBytes)
	}
	if want := ckptHeaderWords + sramBytes/4; len(words) != want {
		return nil, fmt.Errorf("checkpoint image %d words, layout requires %d", len(words), want)
	}
	ck := &decodedCkpt{
		payload: Payload{
			ArchBytes: int(arch),
			AppBytes:  int(app),
			SaveSRAM:  flags&ckptFlagSRAM != 0,
		},
	}
	ck.framWrites = uint64(words[6]) | uint64(words[7])<<32
	ck.core.PC = words[3]
	ck.core.SenseSeq = words[4]
	ck.core.Halted = flags&ckptFlagHalted != 0
	copy(ck.core.Regs[:], words[8:8+isa.NumRegs])
	if ck.payload.SaveSRAM {
		ck.sram = make([]byte, sramBytes)
		for i := 0; i < sramBytes/4; i++ {
			binary.LittleEndian.PutUint32(ck.sram[4*i:], words[ckptHeaderWords+i])
		}
	}
	return ck, nil
}

// naiveCommit reports whether the checkpoint machinery runs in the
// naive single-slot, unvalidated mode — selected by the injector's
// validation mode or by a NaiveCommitter strategy (alpaca-naive). Both
// routes require an attached injector, so fault-free accounting stays
// identical to the assumed-atomic simulator.
func (d *Device) naiveCommit() bool {
	return d.inj != nil && (d.stratNaive || d.inj.NaiveCommit())
}

// targetSlot picks where the next backup writes: the slot not holding
// the live checkpoint, or always slot 0 in naive single-slot mode.
func (d *Device) targetSlot() int {
	if d.naiveCommit() {
		return 0
	}
	if d.activeSlot < 0 {
		return 0
	}
	return 1 - d.activeSlot
}

// writeCheckpoint runs the two-phase commit for payload p. It returns
// false when the supply died before the commit record completed; the
// previous checkpoint (in the other slot) is then still the newest valid
// one. Energy accounting is the caller's job.
func (d *Device) writeCheckpoint(p Payload) bool {
	words := d.encodeCheckpoint(p)
	target := d.targetSlot()

	// Phase 0: append pending outputs to the log. These words are
	// scratch until the commit record advances OutLen over them.
	outBase := len(d.committedOut)
	for i, w := range d.core.OutBuf {
		d.store.WriteOut(outBase+i, w)
	}
	outLen := outBase + len(d.core.OutBuf)

	cyc := d.transferCycles(p.Bytes(), d.cfg.SigmaB)
	omega := float64(p.Bytes()) * d.cfg.OmegaBExtra

	if d.inj == nil {
		// Legacy-identical energy sequence: one modeled transfer, one
		// surcharge; the word writes and commit record are then free.
		ok := d.consume(cyc, energy.ClassMem)
		if ok {
			ok = d.drawExtra(omega)
		}
		if !ok {
			return false
		}
		for i, w := range words {
			d.store.WriteSlotWord(target, i, w)
		}
		rec := energy.CommitRecord{Seq: d.store.NextSeq(), OutLen: uint32(outLen), Len: uint32(len(words))}
		rec.CRC = energy.ChecksumSlot(words, rec)
		for i, w := range rec.EncodeRecord() {
			d.store.WriteRecordWord(target, i, w)
		}
		d.afterCommit(target, outLen, rec.Seq)
		return true
	}

	// Phase 1: word-granular payload writes, attackable mid-stream.
	d.store.EnsureSlot(target, len(words))
	tearAt := d.inj.TearBackup(len(words))
	if !d.writeWords(words, cyc, omega, tearAt, func(i int, w uint32) {
		d.store.WriteSlotWord(target, i, w)
	}) {
		d.result.Faults.TornBackups++
		if tearAt >= 0 {
			d.result.Faults.InjectedTears++
		}
		if d.obs != nil {
			var injected uint64
			if tearAt >= 0 {
				injected = 1
			}
			d.emit(obsv.EvFaultTear, 0, injected, 0)
		}
		return false
	}

	// Phase 2: the commit record, CRC word last. The commit lands the
	// instant that word is written.
	rec := energy.CommitRecord{Seq: d.store.NextSeq(), OutLen: uint32(outLen), Len: uint32(len(words))}
	rec.CRC = energy.ChecksumSlot(words, rec)
	enc := rec.EncodeRecord()
	recCyc := d.transferCycles(energy.CommitRecordBytes, d.cfg.SigmaB)
	recOmega := float64(energy.CommitRecordBytes) * d.cfg.OmegaBExtra
	if !d.writeWords(enc[:], recCyc, recOmega, -1, func(i int, w uint32) {
		d.store.WriteRecordWord(target, i, w)
	}) {
		d.result.Faults.TornBackups++
		if d.obs != nil {
			d.emit(obsv.EvFaultTear, 0, 0, 0)
		}
		return false
	}
	d.afterCommit(target, outLen, rec.Seq)
	return true
}

// writeWords performs a word-granular FRAM transfer: each word draws its
// proportional share of the modeled cycles and surcharge before it
// lands, so a supply failure (scheduled cut or real brown-out) between
// words leaves a torn write. tearAt injects a cut right after that word.
func (d *Device) writeWords(words []uint32, totalCyc uint64, totalOmega float64, tearAt int, write func(int, uint32)) bool {
	n := uint64(len(words))
	var doneCyc uint64
	for i, w := range words {
		stepCyc := totalCyc*uint64(i+1)/n - doneCyc
		doneCyc += stepCyc
		if stepCyc > 0 && !d.consume(stepCyc, energy.ClassMem) {
			return false
		}
		if !d.drawExtra(totalOmega / float64(n)) {
			return false
		}
		write(i, w)
		if i == tearAt {
			d.cap.SetVoltage(0)
			return false
		}
	}
	return true
}

// afterCommit publishes a landed commit to the device's volatile
// mirrors: the committed output stream and the live-slot tracking.
func (d *Device) afterCommit(target, outLen int, seq uint64) {
	if d.rec != nil {
		d.rec.commit(seq, d.bkupStart, d.cycles, int32(len(d.result.Periods)),
			len(d.committedOut), d.core.OutBuf)
	}
	d.committedOut = append(d.committedOut, d.core.OutBuf...)
	d.core.OutBuf = nil
	d.activeSlot = target
	d.hasCkpt = true
	d.everCommitted = true
	if seq > d.maxSeq {
		d.maxSeq = seq
	}
	if len(d.committedOut) != outLen {
		// Internal invariant: the RAM mirror tracks the NVM log exactly.
		panic(fmt.Sprintf("device: committed output mirror %d != log %d", len(d.committedOut), outLen))
	}
}

// restoreCheckpoint selects and applies the newest valid checkpoint.
// restored=false with alive=true means a cold start (no usable
// checkpoint); alive=false means the supply died mid-restore and the
// period ends. Errors are simulator invariant breaches — or, in naive
// mode, the crash-consistency violations the auditor exists to catch.
func (d *Device) restoreCheckpoint() (restored, alive bool, err error) {
	if d.inj != nil {
		flips := 0
		for i := 0; i < 2; i++ {
			flips += d.inj.FlipBits(d.store.SlotWords(i))
			flips += d.inj.FlipBits(d.store.RecordWords(i))
		}
		d.result.Faults.BitFlips += flips
		if flips > 0 && d.obs != nil {
			d.emit(obsv.EvFaultBitFlips, uint64(flips), 0, 0)
		}
		if d.naiveCommit() {
			return d.restoreNaive()
		}
	}

	type cand struct {
		slot int
		rec  energy.CommitRecord
	}
	var cands []cand
	for i := 0; i < 2; i++ {
		if r, ok := d.store.Record(i); ok {
			cands = append(cands, cand{i, r})
		}
	}
	if len(cands) == 2 && cands[1].rec.Seq > cands[0].rec.Seq {
		cands[0], cands[1] = cands[1], cands[0]
	}
	if len(cands) == 0 {
		return d.coldStart()
	}

	if d.inj == nil {
		c := cands[0]
		if !d.store.Validate(c.slot) {
			return false, false, fmt.Errorf("device: slot %d checkpoint failed CRC validation without fault injection", c.slot)
		}
		return d.applySlot(c.slot, c.rec)
	}

	forced := d.inj.ForceStale() && len(cands) > 1
	if forced {
		d.result.Faults.ForcedStale++
	}
	for idx, c := range cands {
		// Read the candidate's commit record.
		if !d.chargeRestore(energy.CommitRecordBytes) {
			return false, false, nil
		}
		if forced && idx == 0 {
			continue
		}
		if !d.store.Validate(c.slot) {
			d.result.Faults.CRCRejections++
			if d.obs != nil {
				d.emit(obsv.EvCRCReject, uint64(c.slot), 0, 0)
			}
			// Charge the payload words read to discover the mismatch.
			n := int(c.rec.Len)
			if max := len(d.store.SlotWords(c.slot)); n > max {
				n = max
			}
			if !d.chargeRestore(4 * n) {
				return false, false, nil
			}
			continue
		}
		if idx > 0 {
			d.result.Faults.StaleRestores++
			if d.obs != nil {
				var force uint64
				if forced {
					force = 1
				}
				d.emit(obsv.EvStaleRestore, uint64(c.slot), force, 0)
			}
		}
		return d.applySlot(c.slot, c.rec)
	}
	return d.coldStart()
}

// restoreNaive is the injector's validation mode: trust slot 0's record
// without CRC validation — the "atomic by fiat" commit the honest
// protocol replaces. Torn or corrupted state is applied blindly; the
// resulting divergence (or decode failure) is what the auditor detects.
func (d *Device) restoreNaive() (restored, alive bool, err error) {
	rec, ok := d.store.Record(0)
	if !ok {
		return d.coldStart()
	}
	if !d.chargeRestore(energy.CommitRecordBytes) {
		return false, false, nil
	}
	n := int(rec.Len)
	if max := len(d.store.SlotWords(0)); n > max {
		n = max
	}
	ck, err := decodeCheckpoint(d.store.SlotWords(0)[:n], d.SRAMFootprint())
	if err != nil {
		return false, false, fmt.Errorf("device: naive commit restored a corrupt checkpoint: %w", err)
	}
	return d.applyDecoded(ck, 0, rec)
}

// coldStart records that no checkpoint survived; the caller boots from
// the program image. Under honest fault injection a cold start after
// FRAM data stores is the extreme case of the stale-restore hazard —
// replaying from scratch against mutated nonvolatile memory — so it
// fail-stops with the same typed error. The naive validation mode skips
// the guard: it exists to diverge so the auditor can catch it.
func (d *Device) coldStart() (restored, alive bool, err error) {
	if d.inj != nil && !d.naiveCommit() && d.framWrites > 0 {
		if d.obs != nil {
			d.emit(obsv.EvUnrecoverable, 0, d.framWrites, 0)
		}
		return false, false, &UnrecoverableError{
			RestoreSeq: 0,
			NewestSeq:  d.maxSeq,
			LostStores: d.framWrites,
		}
	}
	if d.everCommitted {
		d.result.Faults.ColdRestarts++
	}
	d.hasCkpt = false
	d.activeSlot = -1
	d.committedOut = nil
	if d.obs != nil {
		d.emit(obsv.EvColdStart, 0, 0, 0)
	}
	if d.rec != nil {
		d.rec.bootCold(d.cycles, int32(len(d.result.Periods)))
	}
	return false, true, nil
}

// applySlot decodes a validated slot and applies it, first running the
// unrecoverability guard: restoring state older than the newest landed
// commit is only crash-consistent when no FRAM data store happened
// after the target committed (registers and SRAM roll back; FRAM does
// not). A real device detects this by finding a structurally newer
// commit record that fails validation; the simulator uses its
// ground-truth commit counter, which is conservative in the same
// direction. Restoring the newest commit itself is additionally unsafe
// when stores happened since it and the runtime offers no idempotent-
// replay guarantee (Strategy.ReplaySafe). Full-SRAM-snapshot runtimes
// keep all mutable data volatile, so their count delta is zero and
// stale replay stays sound. The guard is active only under fault
// injection, keeping fault-free accounting identical to the
// assumed-atomic simulator.
func (d *Device) applySlot(slot int, rec energy.CommitRecord) (restored, alive bool, err error) {
	ck, err := decodeCheckpoint(d.store.SlotWords(slot)[:rec.Len], d.SRAMFootprint())
	if err != nil {
		return false, false, fmt.Errorf("device: CRC-valid checkpoint failed to decode: %w", err)
	}
	if d.inj != nil && d.framWrites > ck.framWrites && (rec.Seq < d.maxSeq || !d.strat.ReplaySafe()) {
		if d.obs != nil {
			d.emit(obsv.EvUnrecoverable, rec.Seq, d.framWrites-ck.framWrites, 0)
		}
		return false, false, &UnrecoverableError{
			RestoreSeq: rec.Seq,
			NewestSeq:  d.maxSeq,
			LostStores: d.framWrites - ck.framWrites,
		}
	}
	return d.applyDecoded(ck, slot, rec)
}

// applyDecoded charges the modeled restore transfer and reinstates the
// checkpointed state — the same energy sequence the pre-protocol
// simulator used for its assumed-atomic restore.
func (d *Device) applyDecoded(ck *decodedCkpt, slot int, rec energy.CommitRecord) (restored, alive bool, err error) {
	bytes := ck.payload.Bytes()
	cyc := d.transferCycles(bytes, d.cfg.SigmaR)
	ok := d.consume(cyc, energy.ClassMem)
	if ok {
		ok = d.drawExtra(float64(bytes) * d.cfg.OmegaRExtra)
	}
	if !ok {
		return false, false, nil // died restoring; retry next period
	}
	d.core.Restore(ck.core)
	d.core.Halted = false
	if ck.sram != nil {
		if err := d.mem.RestoreSRAMPrefix(ck.sram); err != nil {
			return false, false, err
		}
	}
	d.committedOut = d.store.Out(int(rec.OutLen))
	d.activeSlot = slot
	d.hasCkpt = true
	if d.rec != nil {
		d.rec.bootRestore(d.cycles, int32(len(d.result.Periods)), rec.Seq, ck.core.SenseSeq)
	}
	if d.obs != nil {
		restoreE := float64(cyc)*d.cfg.Power.EnergyPerCycle(energy.ClassMem) +
			float64(bytes)*d.cfg.OmegaRExtra
		d.emit(obsv.EvRestore, uint64(bytes), uint64(slot), restoreE)
	}
	return true, true, nil
}

// chargeRestore draws the cycles and surcharge of reading bytes from the
// checkpoint area during restore, reporting whether the supply survived.
func (d *Device) chargeRestore(bytes int) bool {
	cyc := d.transferCycles(bytes, d.cfg.SigmaR)
	if !d.consume(cyc, energy.ClassMem) {
		return false
	}
	return d.drawExtra(float64(bytes) * d.cfg.OmegaRExtra)
}
