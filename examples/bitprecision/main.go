// Reduced bit-precision backups (§VI-C): approximate applications can
// shave bits off the state they checkpoint. The gain depends on the
// backup cadence — Eq. 16 locates the τ_B where a precision cut pays
// the most. This example sweeps |∂p/∂α_B| across τ_B for several
// compulsory-to-proportional cost ratios and reports the sweet spots.
//
//	go run ./examples/bitprecision
package main

import (
	"fmt"

	"ehmodel/internal/experiments"
	"ehmodel/internal/textplot"
)

func main() {
	base := experiments.DefaultFig11Base()
	fig := experiments.Fig11(experiments.Fig11Config{Base: base})

	var series []textplot.Series
	for _, s := range fig.Series {
		ts := textplot.Series{Label: s.Label}
		for _, p := range s.Points {
			ts.Xs = append(ts.Xs, p.X)
			ts.Ys = append(ts.Ys, p.Y)
		}
		series = append(series, ts)
	}
	fmt.Print(textplot.Chart("|∂p/∂α_B| vs τ_B (Fig. 11)", series, 72, 16, true))
	fmt.Println()
	for _, n := range fig.Notes {
		fmt.Println("•", n)
	}

	r := experiments.CaseBitPrecision(base)
	fmt.Printf("\nAt τ_B,bit = %.0f cycles, cutting one bit (12.5%%) of application-state\n", r.TauBBit)
	fmt.Printf("precision buys Δp = %.4f; the same cut at τ_B,opt buys only %.4f.\n", r.GainOneBit, r.GainAtOpt)
	fmt.Println("Architects can use these curves to decide whether a reduced-precision")
	fmt.Println("backup path is worth building before committing to the design.")
}
