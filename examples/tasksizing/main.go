// Task sizing: a programmer on a DINO/Chain-style task runtime uses the
// EH model to size tasks. The example measures each Table II
// benchmark's natural task length on the device simulator, computes the
// architecture's optimal τ_B from the same run, and shows that
// benchmarks whose tasks land near the optimum make the most progress —
// the paper's Fig. 7 insight, as a workflow.
//
//	go run ./examples/tasksizing
package main

import (
	"context"
	"fmt"
	"os"

	"ehmodel/internal/experiments"
	"ehmodel/internal/textplot"
)

func main() {
	fig, pts, err := experiments.Fig7(context.Background(), experiments.Fig6Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		advice := "tasks well sized"
		switch {
		case p.TauB < p.TauBOpt/2:
			advice = fmt.Sprintf("merge tasks: aim for ~%.0f-cycle tasks", p.TauBOpt)
		case p.TauB > 2*p.TauBOpt:
			advice = fmt.Sprintf("split tasks: aim for ~%.0f-cycle tasks", p.TauBOpt)
		}
		rows = append(rows, []string{
			p.Bench,
			fmt.Sprintf("%.0f", p.TauB),
			fmt.Sprintf("%.0f", p.TauBOpt),
			fmt.Sprintf("%.3f", p.Similarity),
			fmt.Sprintf("%.4f", p.Measured),
			advice,
		})
	}
	fmt.Print(textplot.Table(
		[]string{"benchmark", "task τ_B", "τ_B,opt (Eq. 9)", "similarity", "measured p", "recommendation"},
		rows))
	fmt.Println()
	for _, n := range fig.Notes {
		fmt.Println(n)
	}
}
