// Store-major locality (§VI-A): on a conventional machine you order the
// transpose loop for load locality; on an intermittent machine with a
// mixed-volatility cache, dirty blocks are the backup payload, so store
// locality can matter more. This example runs Listing 1 both ways on
// the cache model and checks Eq. 13/14 against the measurement across
// NVM write/read bandwidth ratios.
//
//	go run ./examples/storemajor
package main

import (
	"fmt"
	"os"

	"ehmodel/internal/experiments"
	"ehmodel/internal/textplot"
)

func main() {
	fig, pts, err := experiments.CaseStoreMajor()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		verdict := "load-major (or tie)"
		if p.StoreWins {
			verdict = "store-major"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.SigmaRatio),
			fmt.Sprintf("%.3f", p.MeasuredRatio),
			fmt.Sprintf("%.3f", p.ModelRatio),
			verdict,
		})
	}
	fmt.Print(textplot.Table(
		[]string{"σ_B/σ_load", "sim τ_lm/τ_sm", "Eq. 13 ratio", "Eq. 14 says write your loop"},
		rows))
	fmt.Println()
	for _, n := range fig.Notes {
		fmt.Println("•", n)
	}
	fmt.Println("\nTakeaway: with STT-RAM-like writes (σ_B = σ_load/10), transform loops")
	fmt.Println("to store-major order; with symmetric FRAM bandwidth the orders tie —")
	fmt.Println("a trade-off that does not exist on conventional architectures.")
}
