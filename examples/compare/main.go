// Compare: run one workload under every backup/restore runtime on the
// same energy budget and rank them — the architect's first question
// ("which mechanism fits my workload?") answered with the simulator
// and cross-checked against the EH model's taxonomy.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"os"
	"sort"

	"ehmodel/internal/asm"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/strategy"
	"ehmodel/internal/textplot"
	"ehmodel/internal/workload"
)

type entry struct {
	name string
	seg  asm.Segment
	s    device.Strategy
}

func main() {
	const bench = "sense"
	const periodCycles = 20000

	entries := []entry{
		{"hibernus", asm.SRAM, strategy.NewHibernus()},
		{"mementos", asm.SRAM, strategy.NewMementos()},
		{"dino", asm.SRAM, strategy.NewDINO()},
		{"chain", asm.SRAM, strategy.NewChain()},
		{"timer τ=2000", asm.SRAM, strategy.NewTimer(2000, 0.1)},
		{"speculative τ=2000", asm.SRAM, strategy.NewSpeculative(2000, 0.1)},
		{"clank", asm.FRAM, strategy.NewClank()},
		{"ratchet", asm.FRAM, strategy.NewRatchet()},
		{"nvp every-cycle", asm.FRAM, strategy.NewNVPEveryCycle()},
		{"nvp threshold", asm.FRAM, strategy.NewNVPThreshold()},
	}

	w, ok := workload.Get(bench)
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown workload", bench)
		os.Exit(1)
	}
	pm := energy.MSP430Power()
	e := periodCycles * pm.EnergyPerCycle(energy.ClassALU)

	type row struct {
		name             string
		p                float64
		tauB             float64
		periods, backups int
		restores         int
	}
	var rows []row
	for _, en := range entries {
		prog, err := w.Build(workload.Options{Seg: en.seg, Scale: 4})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		capC, vmax, von, voff := device.FixedSupplyConfig(e)
		d, err := device.New(device.Config{
			Prog: prog, Power: pm,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			MaxPeriods: 100000, MaxCycles: 1 << 62,
		}, en.s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := d.Run()
		if err != nil || !res.Completed {
			fmt.Fprintf(os.Stderr, "%s: %v (completed=%v)\n", en.name, err, res != nil && res.Completed)
			os.Exit(1)
		}
		rows = append(rows, row{
			name:     en.name,
			p:        res.MeasuredProgress(),
			tauB:     res.MeanTauB(),
			periods:  len(res.Periods),
			backups:  res.Backups(),
			restores: res.Restores(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p > rows[j].p })

	fmt.Printf("workload %q, E = %.3g J per active period (%v cycles)\n\n", bench, e, periodCycles)
	var table [][]string
	for i, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", i+1), r.name,
			fmt.Sprintf("%.4f", r.p),
			fmt.Sprintf("%.0f", r.tauB),
			fmt.Sprint(r.periods), fmt.Sprint(r.backups), fmt.Sprint(r.restores),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"#", "runtime", "progress p", "mean τ_B", "periods", "backups", "restores"},
		table))
	fmt.Println("\nEvery run commits exactly the continuous-execution output; the ranking")
	fmt.Println("is purely about how much of the harvested energy became useful work.")
}
