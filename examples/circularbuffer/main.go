// Circular buffers for idempotency (§VI-B): on Clank, every
// write-after-read store forces a checkpoint, so an in-place array
// update (Listing 2's conventional form) checkpoints on every
// iteration. Storing the array in a larger circular buffer postpones
// violations by N − n + 1 stores. This example sizes the buffer with
// Eq. 15 against the architecture's Eq. 9 optimum, then verifies on the
// device simulator that progress peaks at the plan.
//
//	go run ./examples/circularbuffer
package main

import (
	"context"
	"fmt"
	"os"

	"ehmodel/internal/experiments"
	"ehmodel/internal/textplot"
)

func main() {
	fig, pts, plan, err := experiments.CaseCircularBuffer(context.Background(), experiments.CircularConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Eq. 15 plan: buffer of %d slots (round to %d for cheap indexing), targeting τ_B = %.0f cycles\n\n",
		plan.N, plan.NPow2, plan.Target)
	rows := make([][]string, 0, len(pts))
	best := pts[0]
	for _, p := range pts {
		if p.Progress > best.Progress {
			best = p
		}
	}
	for _, p := range pts {
		mark := ""
		if p.BufN == plan.N {
			mark = "← Eq. 15 plan"
		}
		if p.BufN == best.BufN && mark == "" {
			mark = "← measured best"
		} else if p.BufN == best.BufN {
			mark = "← Eq. 15 plan = measured best"
		}
		rows = append(rows, []string{
			fmt.Sprint(p.BufN),
			fmt.Sprintf("%.0f", p.PredictedTau),
			fmt.Sprintf("%.0f", p.MeasuredTau),
			fmt.Sprintf("%.4f", p.Progress),
			mark,
		})
	}
	fmt.Print(textplot.Table(
		[]string{"buffer N", "τ_B predicted", "τ_B measured", "progress p", ""},
		rows))
	fmt.Println()
	for _, n := range fig.Notes {
		fmt.Println("•", n)
	}
}
