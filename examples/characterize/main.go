// Characterize: fit the EH model to measurements. The example plays the
// role of an engineer with a board on the bench: sweep the firmware's
// backup interval, record measured progress (here the device simulator
// stands in for the hardware), fit the identifiable model curve, and
// read off the optimal cadence and the physical cost coefficients.
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"os"

	"ehmodel/internal/asm"
	"ehmodel/internal/core"
	"ehmodel/internal/device"
	"ehmodel/internal/energy"
	"ehmodel/internal/strategy"
	"ehmodel/internal/textplot"
	"ehmodel/internal/trace"
	"ehmodel/internal/workload"
)

func main() {
	pm := energy.MSP430Power()
	w, _ := workload.Get("fir")
	prog, err := w.Build(workload.Options{Seg: asm.SRAM, Scale: 60})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	e := 20000 * pm.EnergyPerCycle(energy.ClassALU)
	// Harvested supply: per-period energy varies with the trace, so
	// dead cycles average toward the model's τ_B/2 assumption instead
	// of locking to one deterministic phase.
	tr := trace.Generate(trace.MultiPeak, 10, 1e-3, 21)
	harv, err := energy.NewHarvester(tr, 40000, 0.7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The sweep must straddle the progress peak: without points on the
	// dead-energy rolloff (τ_B approaching the period length) the
	// model's slope coefficient is unidentifiable.
	fmt.Println("sweeping the backup interval on the \"hardware\"...")
	var pts []core.SweepPoint
	var rows [][]string
	for _, tauB := range []uint64{100, 250, 500, 1000, 2000, 4000, 8000, 12000, 16000, 19000} {
		capC, vmax, von, voff := device.FixedSupplyConfig(e)
		d, err := device.New(device.Config{
			Prog: prog, Power: pm, Harvester: harv,
			CapC: capC, CapVMax: vmax, VOn: von, VOff: voff,
			MaxPeriods: 30, MaxCycles: 1 << 62,
		}, strategy.NewTimer(tauB, 0.1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := d.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p := res.MeasuredProgress()
		pts = append(pts, core.SweepPoint{X: float64(tauB), P: p})
		rows = append(rows, []string{fmt.Sprint(tauB), fmt.Sprintf("%.4f", p)})
	}
	fmt.Print(textplot.Table([]string{"τ_B (cycles)", "measured p"}, rows))

	fc, err := core.FitSweep(pts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nfit (rms residual %.4f):\n", fc.Residual)
	fmt.Printf("  scale S = %.4f, slope Ã = %.3g, compulsory cost B̃ = %.1f cycles\n", fc.S, fc.A, fc.B)
	fmt.Printf("  fitted optimal backup interval τ_B,opt = %.0f cycles\n", fc.TauBOpt())
	if a, b, c, err := fc.Decompose(0); err == nil {
		fmt.Printf("  decomposed (r=0): a = %.3g, b = %.1f cycles, c = %.3f\n", a, b, c)
	}
	fmt.Println("\nWith the model fitted, every other design question — worst-case")
	fmt.Println("cadence (Eq. 10), backup-vs-restore focus (Eq. 11), precision sweet")
	fmt.Println("spot (Eq. 16) — is an analytical evaluation instead of a lab day.")
}
