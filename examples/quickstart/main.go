// Quickstart: evaluate the EH model for an intermittent processor
// design and find its optimal backup cadence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ehmodel/internal/core"
)

func main() {
	// An energy-harvesting device: each active period delivers 100 µJ;
	// execution costs 70 pJ/cycle; a backup writes 72 bytes of
	// architectural state plus 0.1 bytes/cycle of application state to
	// FRAM at 37.5 pJ/byte, 2 bytes/cycle.
	p := core.Params{
		E:       100e-6,
		Epsilon: 70e-12,
		TauB:    5000, // current firmware checkpoints every 5000 cycles
		SigmaB:  2,
		OmegaB:  37.5e-12,
		AB:      72,
		AlphaB:  0.1,
		SigmaR:  2,
		OmegaR:  37.5e-12,
		AR:      72,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}

	b := p.Breakdown()
	fmt.Printf("At τ_B = %.0f cycles:\n", p.TauB)
	fmt.Printf("  forward progress p = %.4f (%.1f%% of each period's energy)\n", b.P, 100*b.P)
	fmt.Printf("  %.0f useful cycles across %.1f backups per period\n", b.TauP, b.NB)
	lo, hi := p.ProgressBounds()
	fmt.Printf("  dead-cycle variability bounds: [%.4f, %.4f]\n\n", lo, hi)

	// Where should this design's backup interval actually sit?
	opt := p.TauBOpt()
	fmt.Printf("Optimal τ_B (Eq. 9): %.0f cycles → p = %.4f\n", opt, p.WithTauB(opt).Progress())
	fmt.Printf("Designing for tail latency instead (Eq. 10): τ_B = %.0f cycles\n", p.TauBOptWorstCase())

	// Below the break-even interval, optimize the backup path; above
	// it, the restore path (Eq. 11).
	fmt.Printf("Backup/restore break-even (Eq. 11): %.0f cycles\n", p.TauBBreakEven())

	// And if the runtime could instead take a single backup right
	// before dying (Hibernus-style)?
	fmt.Printf("Single-backup progress (Eq. 12): %.4f\n", p.ProgressSingleBackup())
}
