module ehmodel

go 1.24
